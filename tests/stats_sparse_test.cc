// CSR SparseMatrix: structural contract (append_row / RowView) and the
// bit-compatibility contract with the dense feature path — to_dense,
// normalize_rows_l1, select_columns_dense and sparse f_regression must be
// bitwise equal to their dense equivalents, for any thread count.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/phase.h"
#include "core/profile.h"
#include "stats/feature_select.h"
#include "stats/matrix.h"
#include "stats/sparse.h"
#include "support/assert.h"
#include "support/rng.h"

namespace simprof {
namespace {

void expect_same_matrix(const stats::Matrix& a, const stats::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  const auto fa = a.flat();
  const auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    ASSERT_EQ(fa[i], fb[i]) << "flat index " << i;  // bitwise, not NEAR
  }
}

/// Same shape as the determinism suite's profile: few methods per unit,
/// unsorted ids with duplicates — the worst case for the CSR builder. The
/// method table is `spare` entries wider than the ids units ever touch, so
/// those columns stay all-zero on both paths.
core::ThreadProfile synthetic_profile(std::size_t units,
                                      std::size_t methods = 40,
                                      std::size_t spare = 0) {
  core::ThreadProfile p;
  for (std::size_t m = 0; m < methods + spare; ++m) {
    p.method_names.push_back("m" + std::to_string(m));
    p.method_kinds.push_back(jvm::OpKind::kMap);
  }
  Rng rng(6);
  for (std::size_t i = 0; i < units; ++i) {
    core::UnitRecord u;
    u.unit_id = i;
    u.counters.instructions = 1'000'000;
    u.counters.cycles =
        1'000'000 + static_cast<std::uint64_t>(rng.next_below(2'000'000));
    for (int j = 0; j < 6; ++j) {
      u.methods.push_back(
          static_cast<jvm::MethodId>((i + 7ull * j) % methods));
      u.counts.push_back(static_cast<std::uint32_t>(1 + rng.next_below(20)));
    }
    p.units.push_back(std::move(u));
  }
  return p;
}

TEST(SparseMatrix, AppendRowAndRowView) {
  stats::SparseMatrix m(3, 5);
  const std::uint32_t c0[] = {1, 4};
  const double v0[] = {2.0, 3.0};
  m.append_row(c0, v0);
  m.append_row({}, {});  // an all-zero row
  const std::uint32_t c2[] = {0};
  const double v2[] = {7.0};
  m.append_row(c2, v2);

  EXPECT_EQ(m.rows_filled(), 3u);
  EXPECT_EQ(m.nnz(), 3u);
  const auto r0 = m.row(0);
  ASSERT_EQ(r0.cols.size(), 2u);
  EXPECT_EQ(r0.cols[0], 1u);
  EXPECT_EQ(r0.vals[1], 3.0);
  EXPECT_EQ(m.row(1).cols.size(), 0u);

  const stats::Matrix d = m.to_dense();
  EXPECT_EQ(d.at(0, 1), 2.0);
  EXPECT_EQ(d.at(0, 0), 0.0);
  EXPECT_EQ(d.at(2, 0), 7.0);
}

TEST(SparseMatrix, AppendRowEnforcesContract) {
  stats::SparseMatrix m(1, 4);
  const std::uint32_t unsorted[] = {2, 1};
  const double vals[] = {1.0, 1.0};
  EXPECT_THROW(m.append_row(unsorted, vals), ContractViolation);
  const std::uint32_t oob[] = {4};
  const double one[] = {1.0};
  EXPECT_THROW(m.append_row(oob, one), ContractViolation);
}

TEST(SparseMatrix, FeatureBuilderMatchesDenseBitwise) {
  const core::ThreadProfile profile = synthetic_profile(150);
  const stats::Matrix dense = core::build_feature_matrix(profile);
  const stats::SparseMatrix sparse =
      core::build_sparse_feature_matrix(profile);
  expect_same_matrix(sparse.to_dense(), dense);
}

TEST(SparseMatrix, NormalizeRowsMatchesDense) {
  stats::SparseMatrix sparse(40, 30);
  stats::Matrix dense(40, 30);
  Rng rng(9);
  std::vector<std::uint32_t> cols;
  std::vector<double> vals;
  for (std::size_t r = 0; r < 40; ++r) {
    cols.clear();
    vals.clear();
    for (std::uint32_t c = 0; c < 30; ++c) {
      if (rng.next_below(4) != 0) continue;  // ~25% fill
      const double v = rng.next_double(0.0, 50.0);
      cols.push_back(c);
      vals.push_back(v);
      dense.at(r, c) = v;
    }
    sparse.append_row(cols, vals);  // row 7 may end up all-zero — good
  }
  sparse.normalize_rows_l1();
  dense.normalize_rows_l1();
  expect_same_matrix(sparse.to_dense(), dense);
}

TEST(SparseMatrix, SelectColumnsDenseMatchesDenseSelect) {
  const core::ThreadProfile profile = synthetic_profile(300);
  const stats::Matrix dense = core::build_feature_matrix(profile);
  const stats::SparseMatrix sparse =
      core::build_sparse_feature_matrix(profile);
  const std::vector<std::size_t> selected = {39, 0, 17, 3, 24};
  const stats::Matrix expect = dense.select_columns(selected);
  for (std::size_t t : {1u, 2u, 8u}) {
    expect_same_matrix(sparse.select_columns_dense(selected, t), expect);
  }
}

TEST(SparseFRegression, MatchesDenseBitwise) {
  // 2100 rows cross the fixed 1024-row chunk grid twice; method ids 40-47
  // are never touched, giving all-zero columns on both paths.
  const core::ThreadProfile profile = synthetic_profile(2100, 40, 8);
  const stats::Matrix dense = core::build_feature_matrix(profile);
  const stats::SparseMatrix sparse =
      core::build_sparse_feature_matrix(profile);
  std::vector<double> ipc(profile.num_units());
  for (std::size_t u = 0; u < profile.num_units(); ++u) {
    ipc[u] = profile.units[u].ipc();
  }
  const auto base = stats::f_regression(dense, ipc, 1);
  for (std::size_t t : {1u, 2u, 4u, 8u}) {
    EXPECT_EQ(stats::f_regression(sparse, ipc, t), base) << "threads=" << t;
    EXPECT_EQ(stats::f_regression(dense, ipc, t), base) << "threads=" << t;
  }
  // Untouched methods (ids 40-47) must score exactly 0 on both paths.
  for (std::size_t f = 40; f < 48; ++f) EXPECT_EQ(base[f], 0.0);
}

TEST(SparseMatrixGrow, AppendRowGrowMatchesDeclaredShape) {
  // A matrix grown row-by-row (the streaming ingest path) must be
  // indistinguishable — bitwise — from one declared with the final shape.
  const std::vector<std::vector<std::uint32_t>> cols{
      {0, 3}, {1}, {0, 2, 5}, {}};
  const std::vector<std::vector<double>> vals{
      {2.0, 4.0}, {1.0}, {3.0, 5.0, 7.0}, {}};

  stats::SparseMatrix declared(4, 6);
  stats::SparseMatrix grown;
  for (std::size_t r = 0; r < cols.size(); ++r) {
    declared.append_row(cols[r], vals[r]);
    grown.append_row_grow(cols[r], vals[r]);
  }
  EXPECT_EQ(grown.rows(), 4u);
  EXPECT_EQ(grown.cols(), 6u);  // widest referenced column + 1
  expect_same_matrix(grown.to_dense(), declared.to_dense());

  // grow_cols widens the snapshot without disturbing stored entries, and
  // normalization after growth matches the declared path.
  stats::SparseMatrix wide = grown;
  wide.grow_cols(9);
  stats::SparseMatrix declared_wide(4, 9);
  for (std::size_t r = 0; r < cols.size(); ++r) {
    declared_wide.append_row(cols[r], vals[r]);
  }
  wide.normalize_rows_l1();
  declared_wide.normalize_rows_l1();
  expect_same_matrix(wide.to_dense(), declared_wide.to_dense());
}

TEST(SparseMatrixGrow, ContractViolations) {
  stats::SparseMatrix grown;
  const std::vector<std::uint32_t> bad{2, 2};
  const std::vector<double> v{1.0, 1.0};
  EXPECT_THROW(grown.append_row_grow(bad, v), ContractViolation);

  stats::SparseMatrix m(2, 3);
  m.append_row(std::vector<std::uint32_t>{0}, std::vector<double>{1.0});
  // Mixing the growable builder into a partially declared matrix would
  // corrupt the declared shape contract.
  EXPECT_THROW(m.append_row_grow(std::vector<std::uint32_t>{1},
                                 std::vector<double>{1.0}),
               ContractViolation);

  stats::SparseMatrix g2;
  g2.append_row_grow(std::vector<std::uint32_t>{4}, std::vector<double>{1.0});
  EXPECT_THROW(g2.grow_cols(3), ContractViolation);  // shrinking
}

}  // namespace
}  // namespace simprof
