// End-to-end integration tests: the full SimProf pipeline (run → profile →
// phases → sampling → sensitivity) on real workload configurations at small
// scale, plus the WorkloadLab disk cache.
#include <gtest/gtest.h>

#include <cstdio>
#include <filesystem>

#include "core/lab.h"
#include "core/phase.h"
#include "core/sampling.h"
#include "core/sensitivity.h"
#include "workloads/workloads.h"

namespace simprof::core {
namespace {

LabConfig small_lab(const char* dir) {
  LabConfig cfg;
  cfg.scale = 0.05;
  cfg.graph_scale_override = 12;
  cfg.cache_dir = dir;
  return cfg;
}

class ScratchDir {
 public:
  ScratchDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("simprof_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }
  const char* c_str() const { return path_.c_str(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

TEST(Integration, WordCountSparkFullPipeline) {
  ScratchDir dir;
  WorkloadLab lab(small_lab(dir.c_str()));
  const auto run = lab.run("wc_sp");
  ASSERT_GT(run.profile.num_units(), 30u);

  const PhaseModel model = form_phases(run.profile);
  EXPECT_GE(model.k, 1u);
  EXPECT_LE(model.k, 20u);

  // Phase formation separates performance: weighted CoV < population CoV.
  const auto cov = cov_summary(run.profile, model);
  EXPECT_LT(cov.weighted, cov.population);

  // SimProf at n = 20 lands within 15% of the oracle at this tiny scale.
  const auto plan = simprof_sample(run.profile, model, 20, 7);
  EXPECT_LT(relative_error(plan, run.profile), 0.15);
  // The CI (99.7%) is consistent with the realized error most of the time;
  // at minimum it must be a sane, positive-width interval.
  EXPECT_GT(plan.ci.margin, 0.0);
  EXPECT_GT(plan.estimated_cpi, 0.0);
}

TEST(Integration, HadoopWordCountHasSortAndIoPhases) {
  ScratchDir dir;
  WorkloadLab lab(small_lab(dir.c_str()));
  const auto run = lab.run("wc_hp");
  const PhaseModel model = form_phases(run.profile);
  // The Figure 15 structure: more than one phase, and at least one of the
  // paper's four types beyond pure map must appear.
  EXPECT_GE(model.k, 2u);
  bool has_non_map = false;
  for (auto t : model.phase_types) {
    has_non_map |= (t != jvm::OpKind::kMap);
  }
  EXPECT_TRUE(has_non_map);
}

TEST(Integration, LabCacheRoundTripsProfile) {
  ScratchDir dir;
  LabConfig cfg = small_lab(dir.c_str());
  WorkloadLab lab(cfg);
  const auto first = lab.run("grep_sp");
  EXPECT_FALSE(first.from_cache);
  const auto second = lab.run("grep_sp");
  EXPECT_TRUE(second.from_cache);
  ASSERT_EQ(second.profile.num_units(), first.profile.num_units());
  for (std::size_t i = 0; i < first.profile.num_units(); ++i) {
    EXPECT_EQ(second.profile.units[i].counters.cycles,
              first.profile.units[i].counters.cycles);
  }
  EXPECT_EQ(second.profile.method_names, first.profile.method_names);
}

TEST(Integration, CacheKeyedByParameters) {
  ScratchDir dir;
  LabConfig a = small_lab(dir.c_str());
  WorkloadLab lab_a(a);
  lab_a.run("grep_sp");
  LabConfig b = a;
  b.seed = 77;
  WorkloadLab lab_b(b);
  EXPECT_FALSE(lab_b.run("grep_sp").from_cache);  // different seed, new run
}

TEST(Integration, InputSensitivityAcrossGraphInputs) {
  // Train on Google, test Road (radically different topology): phases exist
  // on both and the machinery classifies reference units without falling
  // over; the shape claim (some phases sensitive, Road more often so) is
  // exercised in the fig12/fig13 benches at full scale.
  ScratchDir dir;
  LabConfig cfg = small_lab(dir.c_str());
  WorkloadLab lab(cfg);
  const auto train = lab.run("cc_sp", "Google");
  const auto ref = lab.run("cc_sp", "Road");
  const PhaseModel model = form_phases(train.profile);

  const auto labels = classify_units(model, ref.profile);
  ASSERT_EQ(labels.size(), ref.profile.num_units());
  for (auto l : labels) EXPECT_LT(l, model.k);

  const auto report =
      input_sensitivity_test(model, {&ref.profile}, {"Road"});
  EXPECT_EQ(report.phase_sensitive.size(), model.k);
  const auto plan = simprof_sample(train.profile, model, 20, 3);
  const double frac = report.sensitive_point_fraction(plan);
  EXPECT_GE(frac, 0.0);
  EXPECT_LE(frac, 1.0);
}

TEST(Integration, BaselinesRankAsPaperExpectsOnHadoopSort) {
  // sort_hp: strongly staged workload. SECOND (window in the map stage)
  // must miss the late stages; SimProf must beat it clearly.
  ScratchDir dir;
  LabConfig cfg = small_lab(dir.c_str());
  cfg.scale = 0.15;  // enough units for a meaningful window
  WorkloadLab lab(cfg);
  const auto run = lab.run("sort_hp");
  const PhaseModel model = form_phases(run.profile);

  double simprof_err = 0.0;
  constexpr int kDraws = 5;
  for (int s = 0; s < kDraws; ++s) {
    simprof_err += relative_error(
        simprof_sample(run.profile, model, 20, s), run.profile);
  }
  simprof_err /= kDraws;
  const double second_err = relative_error(
      second_sample(run.profile, 0.005, 2.0), run.profile);
  EXPECT_LT(simprof_err, second_err);
}

TEST(Integration, ProfilesAreReproducibleAcrossLabs) {
  ScratchDir d1, d2;
  WorkloadLab lab1(small_lab(d1.c_str()));
  WorkloadLab lab2(small_lab(d2.c_str()));
  const auto a = lab1.run("bayes_hp");
  const auto b = lab2.run("bayes_hp");
  ASSERT_EQ(a.profile.num_units(), b.profile.num_units());
  EXPECT_EQ(a.profile.total_cycles(), b.profile.total_cycles());
}

}  // namespace
}  // namespace simprof::core
