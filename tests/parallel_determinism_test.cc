// The parallel phase-formation determinism contract: kmeans, choose_k,
// the silhouette variants, classify_units and form_phases must produce
// bit-identical results for threads = 1, 2 and hardware_concurrency on the
// same seed — per-k/per-restart fixed RNG streams plus chunk-ordered
// reductions make thread count invisible in the output.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "core/phase.h"
#include "core/profile.h"
#include "core/sensitivity.h"
#include "features/feature_mode.h"
#include "stats/feature_select.h"
#include "stats/kmeans.h"
#include "stats/silhouette.h"
#include "support/rng.h"
#include "support/thread_pool.h"

namespace simprof {
namespace {

std::vector<std::size_t> thread_sweep() {
  std::vector<std::size_t> t{1, 2};
  const std::size_t hw = support::default_thread_count();
  if (hw > 2) t.push_back(hw);
  return t;
}

stats::Matrix clustered_points(std::size_t n, std::size_t d,
                               std::size_t clusters, std::uint64_t seed) {
  Rng rng(seed);
  stats::Matrix m(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i % clusters;
    for (std::size_t j = 0; j < d; ++j) {
      m.at(i, j) =
          (j % clusters == c ? 1.0 : 0.1) + 0.05 * rng.next_gaussian();
    }
  }
  return m;
}

void expect_same_matrix(const stats::Matrix& a, const stats::Matrix& b) {
  ASSERT_EQ(a.rows(), b.rows());
  ASSERT_EQ(a.cols(), b.cols());
  const auto fa = a.flat();
  const auto fb = b.flat();
  for (std::size_t i = 0; i < fa.size(); ++i) {
    ASSERT_EQ(fa[i], fb[i]) << "flat index " << i;  // bitwise, not NEAR
  }
}

TEST(ParallelDeterminism, KMeansIdenticalAcrossThreadCounts) {
  const stats::Matrix pts = clustered_points(300, 24, 4, 7);
  stats::KMeansConfig cfg;
  cfg.threads = 1;
  Rng rng1(99);
  const stats::KMeansResult base = stats::kmeans(pts, 5, rng1, cfg);
  for (std::size_t t : thread_sweep()) {
    cfg.threads = t;
    Rng rng(99);
    const stats::KMeansResult r = stats::kmeans(pts, 5, rng, cfg);
    EXPECT_EQ(r.labels, base.labels) << "threads=" << t;
    EXPECT_EQ(r.inertia, base.inertia) << "threads=" << t;
    EXPECT_EQ(r.iterations, base.iterations) << "threads=" << t;
    expect_same_matrix(r.centers, base.centers);
  }
}

TEST(ParallelDeterminism, ChooseKIdenticalAcrossThreadCounts) {
  const stats::Matrix pts = clustered_points(240, 20, 3, 11);
  stats::ChooseKConfig cfg;
  cfg.max_k = 8;
  cfg.threads = 1;
  Rng rng1(5);
  const stats::ChooseKResult base = stats::choose_k(pts, rng1, cfg);
  for (std::size_t t : thread_sweep()) {
    cfg.threads = t;
    Rng rng(5);
    const stats::ChooseKResult r = stats::choose_k(pts, rng, cfg);
    EXPECT_EQ(r.k, base.k) << "threads=" << t;
    EXPECT_EQ(r.scores, base.scores) << "threads=" << t;
    EXPECT_EQ(r.clustering.labels, base.clustering.labels) << "threads=" << t;
    expect_same_matrix(r.clustering.centers, base.clustering.centers);
  }
}

TEST(ParallelDeterminism, SilhouettesIdenticalAcrossThreadCounts) {
  const stats::Matrix pts = clustered_points(500, 16, 4, 13);
  stats::KMeansConfig kcfg;
  kcfg.threads = 1;
  Rng rng(21);
  const stats::KMeansResult r = stats::kmeans(pts, 4, rng, kcfg);
  const double exact1 = stats::exact_silhouette(pts, r.labels, 4, 1);
  const double simpl1 =
      stats::simplified_silhouette(pts, r.centers, r.labels, 1);
  const double sampl1 =
      stats::sampled_silhouette(pts, r.labels, 4, 100, 1234, 1);
  for (std::size_t t : thread_sweep()) {
    EXPECT_EQ(stats::exact_silhouette(pts, r.labels, 4, t), exact1);
    EXPECT_EQ(stats::simplified_silhouette(pts, r.centers, r.labels, t),
              simpl1);
    EXPECT_EQ(stats::sampled_silhouette(pts, r.labels, 4, 100, 1234, t),
              sampl1);
  }
}

TEST(ParallelDeterminism, FRegressionIdenticalAcrossThreadCounts) {
  // 2100 rows × 300 columns: the column-blocked kernel sees three blocks of
  // 128 and the row loop crosses the fixed 1024-row chunk grid twice, so
  // every fold boundary of the parallel decomposition is exercised.
  const stats::Matrix x = clustered_points(2100, 300, 5, 17);
  Rng rng(31);
  std::vector<double> y(x.rows());
  for (auto& v : y) v = rng.next_double(0.0, 2.0);
  const auto base = stats::f_regression(x, y, 1);
  for (std::size_t t : {2u, 4u, 8u}) {
    EXPECT_EQ(stats::f_regression(x, y, t), base) << "threads=" << t;
  }
}

core::ThreadProfile synthetic_profile(std::size_t units) {
  core::ThreadProfile p;
  for (int m = 0; m < 40; ++m) {
    p.method_names.push_back("m" + std::to_string(m));
    p.method_kinds.push_back(jvm::OpKind::kMap);
  }
  Rng rng(6);
  for (std::size_t i = 0; i < units; ++i) {
    core::UnitRecord u;
    u.unit_id = i;
    u.counters.instructions = 1'000'000;
    u.counters.cycles =
        1'000'000 + static_cast<std::uint64_t>(rng.next_below(2'000'000));
    // Sparse MAV so the mav/combined feature modes have real columns; some
    // units stay MAV-empty (compute-only).
    if (i % 5 != 4) {
      for (std::size_t b = 0; b < hw::kMavDim; ++b) {
        if (rng.next_bool(0.4)) u.mav.counts[b] = rng.next_below(4096);
      }
    }
    for (int j = 0; j < 6; ++j) {
      u.methods.push_back(static_cast<jvm::MethodId>((i + 7ull * j) % 40));
      u.counts.push_back(static_cast<std::uint32_t>(1 + rng.next_below(20)));
    }
    p.units.push_back(std::move(u));
  }
  return p;
}

TEST(ParallelDeterminism, FormPhasesIdenticalAcrossThreadCounts) {
  const core::ThreadProfile profile = synthetic_profile(400);
  core::PhaseFormationConfig cfg;
  cfg.threads = 1;
  const core::PhaseModel base = core::form_phases(profile, cfg);
  for (std::size_t t : thread_sweep()) {
    cfg.threads = t;
    const core::PhaseModel model = core::form_phases(profile, cfg);
    EXPECT_EQ(model.k, base.k) << "threads=" << t;
    EXPECT_EQ(model.labels, base.labels) << "threads=" << t;
    EXPECT_EQ(model.silhouette_scores, base.silhouette_scores)
        << "threads=" << t;
    EXPECT_EQ(model.feature_names, base.feature_names) << "threads=" << t;
    EXPECT_EQ(model.representative_units, base.representative_units)
        << "threads=" << t;
    expect_same_matrix(model.centers, base.centers);
  }
}

TEST(ParallelDeterminism, FormPhasesIdenticalAcrossThreadCountsEveryMode) {
  // The acceptance contract of the feature subsystem: for every feature
  // mode, thread count is invisible in the formed model, bitwise.
  const core::ThreadProfile profile = synthetic_profile(400);
  for (const auto mode :
       {features::FeatureMode::kFreq, features::FeatureMode::kMav,
        features::FeatureMode::kCombined}) {
    core::PhaseFormationConfig cfg;
    cfg.features = mode;
    cfg.threads = 1;
    const core::PhaseModel base = core::form_phases(profile, cfg);
    EXPECT_EQ(base.feature_mode, mode);
    for (std::size_t t : thread_sweep()) {
      cfg.threads = t;
      const core::PhaseModel model = core::form_phases(profile, cfg);
      EXPECT_EQ(model.k, base.k)
          << "mode=" << features::to_string(mode) << " threads=" << t;
      EXPECT_EQ(model.labels, base.labels)
          << "mode=" << features::to_string(mode) << " threads=" << t;
      EXPECT_EQ(model.silhouette_scores, base.silhouette_scores)
          << "mode=" << features::to_string(mode) << " threads=" << t;
      EXPECT_EQ(model.feature_names, base.feature_names)
          << "mode=" << features::to_string(mode) << " threads=" << t;
      EXPECT_EQ(model.representative_units, base.representative_units)
          << "mode=" << features::to_string(mode) << " threads=" << t;
      expect_same_matrix(model.centers, base.centers);
    }
  }
}

TEST(ParallelDeterminism, DenseAndSparseFeatureMatricesMatchEveryMode) {
  // The dense builder is the equivalence oracle for the CSR hot path —
  // bitwise, per mode, including the mode-specific column layouts.
  const core::ThreadProfile profile = synthetic_profile(150);
  for (const auto mode :
       {features::FeatureMode::kFreq, features::FeatureMode::kMav,
        features::FeatureMode::kCombined}) {
    const stats::Matrix dense = core::build_feature_matrix(profile, mode);
    const stats::SparseMatrix sparse =
        core::build_sparse_feature_matrix(profile, mode);
    ASSERT_EQ(sparse.cols(),
              features::feature_space_cols(mode, profile.num_methods()))
        << "mode=" << features::to_string(mode);
    expect_same_matrix(sparse.to_dense(), dense);

    // And the models formed from each are bitwise the same.
    core::PhaseFormationConfig cfg;
    cfg.features = mode;
    cfg.threads = 1;
    const core::PhaseModel from_dense_path = core::form_phases(profile, cfg);
    const core::PhaseModel from_sparse =
        core::form_phases_from_sparse(profile, sparse, cfg);
    EXPECT_EQ(from_sparse.k, from_dense_path.k);
    EXPECT_EQ(from_sparse.labels, from_dense_path.labels);
    EXPECT_EQ(from_sparse.feature_names, from_dense_path.feature_names);
    expect_same_matrix(from_sparse.centers, from_dense_path.centers);
  }
}

TEST(ParallelDeterminism, ClassifyUnitsIdenticalAcrossThreadCounts) {
  const core::ThreadProfile train = synthetic_profile(300);
  const core::ThreadProfile ref = synthetic_profile(180);
  core::PhaseFormationConfig cfg;
  cfg.threads = 1;
  const core::PhaseModel model = core::form_phases(train, cfg);
  const auto base = core::classify_units(model, ref, 1);
  for (std::size_t t : thread_sweep()) {
    EXPECT_EQ(core::classify_units(model, ref, t), base) << "threads=" << t;
  }
}

TEST(SampledSilhouette, SeededSubsetDoesNotAliasPeriodicLabels) {
  // 5 well-separated one-hot-ish clusters laid out periodically (unit i in
  // cluster i % 5). The old deterministic stride of ⌈2000/400⌉ = 5 sampled
  // only cluster 0 — one non-empty cluster, silhouette 0. The seeded
  // random subset must see all clusters and score the separation high.
  const std::size_t n = 2000, clusters = 5;
  stats::Matrix pts(n, clusters);
  Rng rng(3);
  std::vector<std::size_t> labels(n);
  for (std::size_t i = 0; i < n; ++i) {
    labels[i] = i % clusters;
    for (std::size_t j = 0; j < clusters; ++j) {
      pts.at(i, j) = (j == labels[i] ? 1.0 : 0.0) + 0.01 * rng.next_gaussian();
    }
  }
  const double s = stats::sampled_silhouette(pts, labels, clusters, 400);
  EXPECT_GT(s, 0.8);
  // Reproducible per seed; a different seed is still a valid estimate.
  EXPECT_EQ(s, stats::sampled_silhouette(pts, labels, clusters, 400));
  EXPECT_GT(stats::sampled_silhouette(pts, labels, clusters, 400, 777), 0.8);
}

}  // namespace
}  // namespace simprof
