// Unit tests for the execution substrate: sampling-unit accounting, snapshot
// hooks, wave scheduling, thread-per-task mode, migration events and the
// profiled-core-only simulation rule.
#include <gtest/gtest.h>

#include <vector>

#include "exec/cluster.h"
#include "exec/kernels.h"
#include "jvm/call_stack.h"
#include "support/assert.h"
#include "test_util.h"

namespace simprof::exec {
namespace {

/// Test hook recording every snapshot and unit boundary.
class RecordingHook final : public ProfilingHook {
 public:
  void on_snapshot(std::span<const jvm::MethodId> stack) override {
    snapshots.emplace_back(stack.begin(), stack.end());
  }
  void on_unit_boundary(const hw::PmuCounters& delta,
                        const hw::MavBlock& mav) override {
    units.push_back(delta);
    mavs.push_back(mav);
  }
  std::vector<std::vector<jvm::MethodId>> snapshots;
  std::vector<hw::PmuCounters> units;
  std::vector<hw::MavBlock> mavs;
};

TEST(Cluster, ConfigValidation) {
  auto cfg = testing::tiny_cluster_config();
  cfg.snapshot_interval = 30'000;  // does not divide unit size
  EXPECT_THROW(Cluster{cfg}, ContractViolation);
  cfg = testing::tiny_cluster_config();
  cfg.profiled_core = 99;
  EXPECT_THROW(Cluster{cfg}, ContractViolation);
}

TEST(Cluster, SnapshotsFireEveryIntervalWithLiveStack) {
  Cluster cluster(testing::tiny_cluster_config());
  RecordingHook hook;
  cluster.set_profiling_hook(&hook);
  auto& ctx = cluster.context(0);
  const auto m = cluster.methods().intern("test.Method.run",
                                          jvm::OpKind::kMap);
  {
    jvm::MethodScope scope(ctx.stack(), m);
    ctx.compute(35'000);  // 3 snapshot boundaries at 10k, 20k, 30k
  }
  ASSERT_EQ(hook.snapshots.size(), 3u);
  for (const auto& s : hook.snapshots) {
    ASSERT_EQ(s.size(), 1u);
    EXPECT_EQ(s[0], m);
  }
}

TEST(Cluster, UnitBoundariesCarryCounterDeltas) {
  Cluster cluster(testing::tiny_cluster_config());
  RecordingHook hook;
  cluster.set_profiling_hook(&hook);
  auto& ctx = cluster.context(0);
  ctx.compute(250'000);  // 2.5 units of 100k
  ASSERT_EQ(hook.units.size(), 2u);
  EXPECT_EQ(hook.units[0].instructions, 100'000u);
  EXPECT_EQ(hook.units[1].instructions, 100'000u);
  EXPECT_GT(hook.units[0].cycles, 0u);

  cluster.finish();  // flush the half unit
  ASSERT_EQ(hook.units.size(), 3u);
  EXPECT_EQ(hook.units[2].instructions, 50'000u);
}

TEST(Cluster, UnitBoundariesCarryMavsThatResetPerUnit) {
  Cluster cluster(testing::tiny_cluster_config());
  RecordingHook hook;
  cluster.set_profiling_hook(&hook);
  auto& ctx = cluster.context(0);
  hw::SequentialStream stream(0, 64 * 4096);
  ctx.execute(200'000, &stream);  // 2 units of 100k with memory traffic
  ASSERT_EQ(hook.mavs.size(), 2u);
  ASSERT_EQ(hook.mavs.size(), hook.units.size());
  for (std::size_t i = 0; i < hook.mavs.size(); ++i) {
    const auto& m = hook.mavs[i];
    EXPECT_GT(m.total(), 0u) << "unit " << i;
    // Both halves of the MAV count the same touches: the reuse histogram
    // (cold bucket included) and the level histogram must agree in mass.
    std::uint64_t reuse_sum = 0;
    for (std::size_t b = 0; b < hw::kReuseBuckets; ++b) {
      reuse_sum += m.reuse(b);
    }
    std::uint64_t level_sum = 0;
    for (std::size_t l = 0; l < hw::kLevelSlots; ++l) {
      level_sum += m.counts[hw::kReuseBuckets + l];
    }
    EXPECT_EQ(reuse_sum, level_sum) << "unit " << i;
    // A fresh sequential sweep begins with a cold first touch.
    if (i == 0) EXPECT_GT(m.reuse(hw::kColdBucket), 0u);
  }
  // The tracker resets at every unit boundary: a compute-only unit right
  // after the memory-heavy ones reports an all-zero MAV, not a carry-over.
  ctx.compute(100'000);
  ASSERT_EQ(hook.mavs.size(), 3u);
  EXPECT_EQ(hook.mavs[2].total(), 0u);
  EXPECT_EQ(hook.mavs[2], hw::MavBlock{});
}

TEST(Cluster, FinishIgnoresTinyTail) {
  Cluster cluster(testing::tiny_cluster_config());
  RecordingHook hook;
  cluster.set_profiling_hook(&hook);
  cluster.context(0).compute(100'500);  // tail of 500 < snapshot interval
  cluster.finish();
  EXPECT_EQ(hook.units.size(), 1u);
}

TEST(Cluster, NonProfiledCoreSkipsCacheSimulation) {
  Cluster cluster(testing::tiny_cluster_config());
  RecordingHook hook;
  cluster.set_profiling_hook(&hook);
  auto& other = cluster.context(1);
  hw::SequentialStream stream(0, 1 << 16);
  other.execute(200'000, &stream);
  EXPECT_TRUE(hook.units.empty());              // no unit boundaries fired
  EXPECT_EQ(other.counters().line_touches, 0u); // traffic skipped
  EXPECT_EQ(other.counters().instructions, 200'000u);  // clock advanced
}

TEST(Cluster, ProfiledCoreChargesTraffic) {
  Cluster cluster(testing::tiny_cluster_config());
  auto& ctx = cluster.context(0);
  hw::SequentialStream stream(0, 64 * 100);
  ctx.execute(50'000, &stream);
  EXPECT_EQ(ctx.counters().line_touches, 100u);
  // Cycles exceed pure base-CPI cost because of the memory traffic.
  const double base = 50'000 *
      cluster.memory().config().cost.base_cpi;
  EXPECT_GT(ctx.counters().cycles, static_cast<std::uint64_t>(base));
}

TEST(Cluster, RunStageDealsTasksRoundRobinAcrossCores) {
  Cluster cluster(testing::tiny_cluster_config());
  std::vector<std::uint32_t> ran_on;
  std::vector<Task> tasks;
  for (int i = 0; i < 5; ++i) {
    tasks.push_back(Task{"t", [&](ExecutorContext& ctx) {
                           ran_on.push_back(ctx.core());
                         }});
  }
  cluster.run_stage("s", std::move(tasks));
  EXPECT_EQ(ran_on, (std::vector<std::uint32_t>{0, 1, 0, 1, 0}));
}

TEST(Cluster, WavePressureDropsForStragglers) {
  Cluster cluster(testing::tiny_cluster_config());
  std::vector<std::uint32_t> eff_ways;
  std::vector<Task> tasks;
  for (int i = 0; i < 3; ++i) {  // 2 cores → waves of 2 then 1
    tasks.push_back(Task{"t", [&](ExecutorContext& ctx) {
                           (void)ctx;
                           eff_ways.push_back(
                               cluster.memory().llc().effective_ways());
                         }});
  }
  cluster.run_stage("s", std::move(tasks));
  ASSERT_EQ(eff_ways.size(), 3u);
  EXPECT_LT(eff_ways[0], eff_ways[2]);  // full wave pressured, straggler not
}

TEST(Cluster, ThreadPerTaskAdvancesThreadIds) {
  Cluster cluster(testing::tiny_cluster_config());
  std::vector<std::uint64_t> ids;
  std::vector<Task> tasks;
  for (int i = 0; i < 4; ++i) {
    tasks.push_back(Task{"t", [&](ExecutorContext& ctx) {
                           ids.push_back(ctx.thread_id());
                         }});
  }
  cluster.run_stage("hadoop", std::move(tasks), /*thread_per_task=*/true);
  // Core 0 runs tasks 0 and 2 on fresh threads 1 and 2.
  EXPECT_EQ(ids[0], 1u);
  EXPECT_EQ(ids[2], 2u);
}

TEST(Cluster, DeterministicAcrossIdenticalRuns) {
  auto run_once = [] {
    Cluster cluster(testing::tiny_cluster_config(123));
    auto& ctx = cluster.context(0);
    hw::RandomStream s(0, 1 << 20, 5'000, ctx.rng());
    ctx.execute(400'000, &s);
    return ctx.counters().cycles;
  };
  EXPECT_EQ(run_once(), run_once());
}

TEST(Cluster, MigrationEventsOccurAtConfiguredRate) {
  auto cfg = testing::tiny_cluster_config();
  cfg.migration_prob_per_unit = 1.0;  // force a migration at every boundary
  Cluster cluster(cfg);
  auto& ctx = cluster.context(0);
  ctx.compute(500'000);
  EXPECT_EQ(ctx.counters().migrations, 5u);

  auto cfg2 = testing::tiny_cluster_config();
  cfg2.migration_prob_per_unit = 0.0;
  Cluster c2(cfg2);
  c2.context(0).compute(500'000);
  EXPECT_EQ(c2.context(0).counters().migrations, 0u);
}

TEST(Cluster, ProfiledCoreIsConfigurable) {
  auto cfg = testing::tiny_cluster_config();
  cfg.profiled_core = 1;
  Cluster cluster(cfg);
  RecordingHook hook;
  cluster.set_profiling_hook(&hook);
  cluster.context(0).compute(150'000);  // not profiled anymore
  EXPECT_TRUE(hook.units.empty());
  cluster.context(1).compute(150'000);
  EXPECT_EQ(hook.units.size(), 1u);
  EXPECT_TRUE(cluster.context(1).is_profiled());
  EXPECT_FALSE(cluster.context(0).is_profiled());
}

TEST(Kernels, ScanRegionChargesProportionally) {
  Cluster cluster(testing::tiny_cluster_config());
  auto& ctx = cluster.context(0);
  scan_region(ctx, 0, 6400, 2.0);
  EXPECT_EQ(ctx.counters().instructions, 12'800u);
  EXPECT_EQ(ctx.counters().line_touches, 100u);
}

TEST(Kernels, QuicksortTouchesEachLevelOnce) {
  Cluster cluster(testing::tiny_cluster_config());
  auto& ctx = cluster.context(0);
  // 4096 elements of 64B with cutoff 2048: one partition pass over the full
  // region plus resident leaf passes, and at most one extra partition pass
  // when the random split leaves a half above the cutoff → between 2× and
  // ~2.7× the region in line touches.
  quicksort_traffic(ctx, 0, 4096, 64, default_kernel_costs(), 2048);
  EXPECT_GE(ctx.counters().line_touches, 8192u);
  EXPECT_LE(ctx.counters().line_touches, 11'000u);
}

TEST(Kernels, HashAggregateEmitsTouches) {
  Cluster cluster(testing::tiny_cluster_config());
  auto& ctx = cluster.context(0);
  hash_aggregate(ctx, 0, 1 << 16, 1000, 0.0, default_kernel_costs());
  EXPECT_GT(ctx.counters().line_touches, 1000u);
  EXPECT_GT(ctx.counters().instructions, 30'000u);
}

TEST(Kernels, WriteStreamCompressionCostsMore) {
  Cluster a(testing::tiny_cluster_config());
  Cluster b(testing::tiny_cluster_config());
  write_stream(a.context(0), 0, 64'000, false, default_kernel_costs());
  write_stream(b.context(0), 0, 64'000, true, default_kernel_costs());
  EXPECT_GT(b.context(0).counters().instructions,
            a.context(0).counters().instructions);
}

TEST(Kernels, ZeroWorkIsFree) {
  Cluster cluster(testing::tiny_cluster_config());
  auto& ctx = cluster.context(0);
  scan_region(ctx, 0, 0, 1.0);
  hash_aggregate(ctx, 0, 0, 0, 0.0, default_kernel_costs());
  quicksort_traffic(ctx, 0, 0, 8, default_kernel_costs());
  merge_runs(ctx, 0, 0, 0, 4, default_kernel_costs());
  EXPECT_EQ(ctx.counters().instructions, 0u);
  EXPECT_EQ(ctx.counters().line_touches, 0u);
}

}  // namespace
}  // namespace simprof::exec
