// Checkpoint substrate tests: Cache save/load round-trips (tag arrays, LRU
// order, pressure and statistics), geometry validation, ThreadState
// capture/restore, and full snapshot → pollute → restore → resume
// bit-identity on a live cluster — including the shared-LLC multi-core case
// and the SCKP archive layer (core/checkpoint.h) identity checks.
#include <gtest/gtest.h>

#include <cstring>
#include <sstream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "exec/cluster.h"
#include "hw/cache.h"
#include "jvm/call_stack.h"
#include "support/serialize.h"
#include "test_util.h"

namespace simprof::hw {
namespace {

bool same_counters(const PmuCounters& a, const PmuCounters& b) {
  return a.instructions == b.instructions && a.cycles == b.cycles &&
         a.line_touches == b.line_touches && a.l1_misses == b.l1_misses &&
         a.l2_misses == b.l2_misses && a.llc_misses == b.llc_misses &&
         a.migrations == b.migrations;
}

std::string cache_bytes(const Cache& c) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter w(out);
  c.save_state(w);
  return out.str();
}

void load_cache(Cache& c, const std::string& bytes) {
  std::istringstream in(bytes, std::ios::binary);
  BinaryReader r(in);
  c.load_state(r);
}

TEST(CacheState, SaveLoadRoundtripPreservesWarmthAndStats) {
  const CacheConfig cfg{4096, 4};
  Cache a(cfg);
  for (LineAddr l = 0; l < 200; ++l) a.access(l % 37);
  a.set_effective_ways(2);

  Cache b(cfg);
  load_cache(b, cache_bytes(a));
  EXPECT_EQ(b.stats().hits, a.stats().hits);
  EXPECT_EQ(b.stats().misses, a.stats().misses);
  EXPECT_EQ(b.effective_ways(), a.effective_ways());
  EXPECT_EQ(cache_bytes(b), cache_bytes(a));

  // Resumed behaviour is bit-identical: same hits and misses for any
  // subsequent access sequence.
  for (LineAddr l = 0; l < 100; ++l) {
    EXPECT_EQ(a.access(l % 53), b.access(l % 53)) << "line " << l;
  }
  EXPECT_EQ(cache_bytes(b), cache_bytes(a));
}

TEST(CacheState, GeometryMismatchThrowsSerializeError) {
  Cache a({4096, 4});
  for (LineAddr l = 0; l < 64; ++l) a.access(l);
  const std::string bytes = cache_bytes(a);

  Cache wrong_size({8192, 4});
  EXPECT_THROW(load_cache(wrong_size, bytes), SerializeError);
  Cache wrong_ways({4096, 2});
  EXPECT_THROW(load_cache(wrong_ways, bytes), SerializeError);
}

TEST(CacheState, CorruptArchiveNeverHalfRestores) {
  Cache a({2048, 2});
  for (LineAddr l = 0; l < 64; ++l) a.access(l % 13);
  std::string bytes = cache_bytes(a);
  bytes.resize(bytes.size() / 2);  // truncate mid tag array

  Cache b({2048, 2});
  for (LineAddr l = 0; l < 8; ++l) b.access(l);
  const std::string before = cache_bytes(b);
  EXPECT_THROW(load_cache(b, bytes), SerializeError);
  EXPECT_EQ(cache_bytes(b), before);  // b untouched by the failed load
}

/// Deterministic two-stage workload; stage 2 resumes mid-unit so the restore
/// point sits inside a sampling unit's accounting.
void run_stage_one(exec::Cluster& cluster) {
  std::vector<exec::Task> tasks;
  tasks.push_back({"t0", [](exec::ExecutorContext& ctx) {
                     const auto m = ctx.method("test.scan", jvm::OpKind::kMap);
                     jvm::MethodScope scope(ctx.stack(), m);
                     SequentialStream s(0, 64 * 4000);
                     ctx.execute(150'000, &s);
                   }});
  cluster.run_stage("stage1", std::move(tasks));
}

void run_stage_two(exec::Cluster& cluster, bool both_cores) {
  std::vector<exec::Task> tasks;
  tasks.push_back({"t0", [](exec::ExecutorContext& ctx) {
                     const auto m =
                         ctx.method("test.probe", jvm::OpKind::kReduce);
                     jvm::MethodScope scope(ctx.stack(), m);
                     RandomStream s(0, 1 << 18, 6000, ctx.rng());
                     ctx.execute(180'000, &s);
                   }});
  if (both_cores) {
    // A second concurrent task widens the wave: the shared LLC runs under
    // pressure while the profiled thread executes.
    tasks.push_back({"t1", [](exec::ExecutorContext& ctx) {
                       SequentialStream s(1 << 20, 64 * 8000);
                       ctx.execute(180'000, &s);
                     }});
  }
  cluster.run_stage("stage2", std::move(tasks));
}

std::string memory_bytes(const exec::Cluster& cluster) {
  std::ostringstream out(std::ios::binary);
  BinaryWriter w(out);
  cluster.memory().l1(0).save_state(w);
  cluster.memory().l2(0).save_state(w);
  cluster.memory().llc().save_state(w);
  return out.str();
}

void snapshot_restore_resume_case(bool both_cores) {
  const auto cfg = testing::tiny_cluster_config();

  // Reference: run both stages straight through.
  exec::Cluster ref(cfg);
  run_stage_one(ref);
  run_stage_two(ref, both_cores);
  ref.finish();

  // Checkpointed twin: run stage 1, snapshot, pollute every level of the
  // profiled hierarchy, restore, then resume stage 2.
  exec::Cluster twin(cfg);
  run_stage_one(twin);
  const exec::ThreadState snap = twin.context(0).capture_state();
  const std::string caches = memory_bytes(twin);

  for (LineAddr l = 0; l < 5000; ++l) {
    twin.memory().access(0, MemRef{0xBEEF000 + l, l % 2 == 0, false});
  }
  ASSERT_NE(memory_bytes(twin), caches);

  {
    std::istringstream in(caches, std::ios::binary);
    BinaryReader r(in);
    twin.memory().l1(0).load_state(r);
    twin.memory().l2(0).load_state(r);
    twin.memory().llc().load_state(r);
  }
  twin.context(0).restore_state(snap);
  ASSERT_EQ(memory_bytes(twin), caches);
  run_stage_two(twin, both_cores);
  twin.finish();

  EXPECT_TRUE(same_counters(twin.context(0).counters(),
                            ref.context(0).counters()))
      << "restored run diverged from straight-through run";
  EXPECT_EQ(memory_bytes(twin), memory_bytes(ref));
}

TEST(ClusterCheckpoint, SnapshotRestoreResumeBitIdentity) {
  snapshot_restore_resume_case(/*both_cores=*/false);
}

TEST(ClusterCheckpoint, SharedLlcMultiCoreBitIdentity) {
  snapshot_restore_resume_case(/*both_cores=*/true);
}

TEST(ClusterCheckpoint, ThreadStateCaptureRestoreRoundtrip) {
  exec::Cluster cluster(testing::tiny_cluster_config());
  run_stage_one(cluster);
  auto& ctx = cluster.context(0);
  const exec::ThreadState snap = ctx.capture_state();

  // Drift everything the state covers, then restore.
  ctx.compute(70'000);
  ctx.rng().next_u64();
  ctx.restore_state(snap);

  const exec::ThreadState back = ctx.capture_state();
  EXPECT_TRUE(same_counters(back.counters, snap.counters));
  EXPECT_EQ(back.rng, snap.rng);
  EXPECT_EQ(back.frames, snap.frames);
  EXPECT_EQ(back.next_snapshot_at, snap.next_snapshot_at);
  EXPECT_EQ(back.next_unit_at, snap.next_unit_at);
  EXPECT_EQ(back.thread_id, snap.thread_id);
}

TEST(CheckpointArchive, SaveLoadRoundtripOnLiveCluster) {
  // A cluster positioned exactly at a unit boundary can archive itself and
  // restore the archive in place (the identity checks all pass against its
  // own state).
  const auto cfg = testing::tiny_cluster_config();
  exec::Cluster cluster(cfg);
  cluster.context(0).compute(300'000);  // exactly 3 units

  std::ostringstream out(std::ios::binary);
  core::save_checkpoint(out, cluster, "test-key", 3);
  const std::string archive = out.str();

  {
    std::istringstream in(archive, std::ios::binary);
    EXPECT_GT(core::load_checkpoint(in, cluster, "test-key", 3), 0u);
  }

  // Identity mismatches are typed rejections, not wrong restores.
  {
    std::istringstream in(archive, std::ios::binary);
    EXPECT_THROW(core::load_checkpoint(in, cluster, "other-key", 3),
                 core::CheckpointError);
  }
  {
    std::istringstream in(archive, std::ios::binary);
    EXPECT_THROW(core::load_checkpoint(in, cluster, "test-key", 2),
                 core::CheckpointError);
  }
  {
    std::string flipped = archive;
    flipped[flipped.size() / 2] = static_cast<char>(
        static_cast<unsigned char>(flipped[flipped.size() / 2]) ^ 0x01);
    std::istringstream in(flipped, std::ios::binary);
    EXPECT_THROW(core::load_checkpoint(in, cluster, "test-key", 3),
                 SerializeError);
  }
}

}  // namespace
}  // namespace simprof::hw
