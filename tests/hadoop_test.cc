// Functional tests for the MiniHadoop MapReduce engine: exact results,
// spill/combiner behaviour, partitioning and configuration effects.
#include <gtest/gtest.h>

#include <map>

#include "minihadoop/hadoop.h"
#include "test_util.h"

namespace simprof::hadoop {
namespace {

using Pair = std::pair<std::uint32_t, std::uint64_t>;

JobSpec<std::uint32_t, std::uint32_t, std::uint64_t> count_spec() {
  JobSpec<std::uint32_t, std::uint32_t, std::uint64_t> spec;
  spec.job_name = "count";
  spec.map_fn = [](const std::uint32_t& rec,
                   std::vector<Pair>& out) { out.emplace_back(rec % 10, 1); };
  spec.combine_fn = [](const std::uint64_t& a, const std::uint64_t& b) {
    return a + b;
  };
  spec.reduce_fn = [](const std::uint32_t&,
                      const std::vector<std::uint64_t>& vs) {
    std::uint64_t s = 0;
    for (auto v : vs) s += v;
    return s;
  };
  return spec;
}

std::vector<std::uint32_t> iota_records(std::uint32_t n) {
  std::vector<std::uint32_t> r(n);
  for (std::uint32_t i = 0; i < n; ++i) r[i] = i;
  return r;
}

TEST(Hadoop, CountJobProducesExactHistogram) {
  exec::Cluster cluster(testing::tiny_cluster_config());
  MapReduceJob<std::uint32_t, std::uint32_t, std::uint64_t> job(
      cluster, HadoopConfig{}, count_spec());
  const auto out = job.run(make_splits(iota_records(1000), 6, 8.0));
  std::map<std::uint32_t, std::uint64_t> got(out.begin(), out.end());
  ASSERT_EQ(got.size(), 10u);
  for (const auto& [k, v] : got) EXPECT_EQ(v, 100u) << "key " << k;
}

TEST(Hadoop, ResultsIdenticalWithAndWithoutCombiner) {
  exec::Cluster c1(testing::tiny_cluster_config());
  exec::Cluster c2(testing::tiny_cluster_config());
  auto with = count_spec();
  auto without = count_spec();
  without.combine_fn = nullptr;
  MapReduceJob<std::uint32_t, std::uint32_t, std::uint64_t> j1(
      c1, HadoopConfig{}, with);
  MapReduceJob<std::uint32_t, std::uint32_t, std::uint64_t> j2(
      c2, HadoopConfig{}, without);
  auto o1 = j1.run(make_splits(iota_records(500), 4, 8.0));
  auto o2 = j2.run(make_splits(iota_records(500), 4, 8.0));
  using Hist = std::map<std::uint32_t, std::uint64_t>;
  const Hist h1(o1.begin(), o1.end());
  const Hist h2(o2.begin(), o2.end());
  EXPECT_EQ(h1, h2);
}

TEST(Hadoop, SmallBufferForcesMultipleSpills) {
  exec::Cluster cluster(testing::tiny_cluster_config());
  HadoopConfig cfg;
  cfg.map_buffer_bytes = 1024;  // tiny buffer → many spills
  MapReduceJob<std::uint32_t, std::uint32_t, std::uint64_t> job(
      cluster, cfg, count_spec());
  job.run(make_splits(iota_records(2000), 2, 8.0));
  EXPECT_GT(job.total_spills(), 10u);
}

TEST(Hadoop, LargeBufferSpillsOncePerMapper) {
  exec::Cluster cluster(testing::tiny_cluster_config());
  HadoopConfig cfg;
  cfg.map_buffer_bytes = 1 << 24;
  MapReduceJob<std::uint32_t, std::uint32_t, std::uint64_t> job(
      cluster, cfg, count_spec());
  job.run(make_splits(iota_records(2000), 3, 8.0));
  EXPECT_EQ(job.total_spills(), 3u);  // exactly one final spill per mapper
}

TEST(Hadoop, ReducerCountDefaultsToCores) {
  exec::Cluster cluster(testing::tiny_cluster_config());
  MapReduceJob<std::uint32_t, std::uint32_t, std::uint64_t> job(
      cluster, HadoopConfig{}, count_spec());
  EXPECT_EQ(job.num_reducers(), cluster.num_cores());
}

TEST(Hadoop, OutputSortedWithinEachReducer) {
  // Identity job: keys should come out key-grouped and sorted per reducer.
  exec::Cluster cluster(testing::tiny_cluster_config());
  JobSpec<std::uint32_t, std::uint32_t, std::uint64_t> spec;
  spec.map_fn = [](const std::uint32_t& rec, std::vector<Pair>& out) {
    out.emplace_back(rec, 1);
  };
  spec.reduce_fn = [](const std::uint32_t&,
                      const std::vector<std::uint64_t>& vs) {
    return static_cast<std::uint64_t>(vs.size());
  };
  HadoopConfig cfg;
  cfg.num_reducers = 2;
  MapReduceJob<std::uint32_t, std::uint32_t, std::uint64_t> job(cluster, cfg,
                                                                spec);
  const auto out = job.run(make_splits(iota_records(200), 4, 8.0));
  ASSERT_EQ(out.size(), 200u);
  // Two reducer blocks, each internally sorted.
  std::size_t breaks = 0;
  for (std::size_t i = 1; i < out.size(); ++i) {
    if (out[i].first < out[i - 1].first) ++breaks;
  }
  EXPECT_LE(breaks, 1u);
}

TEST(Hadoop, MissingFunctionsRejected) {
  exec::Cluster cluster(testing::tiny_cluster_config());
  JobSpec<std::uint32_t, std::uint32_t, std::uint64_t> spec;  // no fns
  EXPECT_THROW(
      (MapReduceJob<std::uint32_t, std::uint32_t, std::uint64_t>(
          cluster, HadoopConfig{}, spec)),
      ContractViolation);
}

TEST(Hadoop, CompressionIncreasesMapWorkNotResults) {
  auto run_with = [](bool compress) {
    exec::Cluster cluster(testing::tiny_cluster_config());
    HadoopConfig cfg;
    cfg.compress_map_output = compress;
    MapReduceJob<std::uint32_t, std::uint32_t, std::uint64_t> job(
        cluster, cfg, count_spec());
    auto out = job.run(make_splits(iota_records(800), 2, 8.0));
    return std::make_pair(
        std::map<std::uint32_t, std::uint64_t>(out.begin(), out.end()),
        cluster.context(0).counters().instructions);
  };
  const auto [res_on, instrs_on] = run_with(true);
  const auto [res_off, instrs_off] = run_with(false);
  EXPECT_EQ(res_on, res_off);
  EXPECT_GT(instrs_on, instrs_off);
}

TEST(Hadoop, MakeSplitsPartitionsEverythingOnce) {
  const auto splits = make_splits(iota_records(103), 5, 4.0);
  EXPECT_EQ(splits.size(), 5u);
  std::size_t total = 0;
  for (const auto& s : splits) {
    total += s.records.size();
    EXPECT_EQ(s.bytes, static_cast<std::uint64_t>(4.0 * s.records.size()));
  }
  EXPECT_EQ(total, 103u);
}

TEST(Hadoop, MapTasksRunOnFreshThreads) {
  exec::Cluster cluster(testing::tiny_cluster_config());
  MapReduceJob<std::uint32_t, std::uint32_t, std::uint64_t> job(
      cluster, HadoopConfig{}, count_spec());
  job.run(make_splits(iota_records(100), 4, 8.0));
  // Core 0 ran 2 map tasks + 1 reduce task, each on a new thread.
  EXPECT_GE(cluster.context(0).thread_id(), 3u);
}

}  // namespace
}  // namespace simprof::hadoop
