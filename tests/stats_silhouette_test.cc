// Regression tests for silhouette scoring of degenerate clusterings,
// chiefly the singleton-cluster convention (see DESIGN.md §6d): a point
// alone in its cluster has a(i) undefined, so s(i) = 0 (sklearn convention).
// The simplified variant used to compute a(i) = distance-to-own-centroid = 0
// for such a point and score it s(i) ≈ 1, inflating every k that shaved a
// stray point into its own cluster.
#include <gtest/gtest.h>

#include <cstddef>
#include <vector>

#include "stats/matrix.h"
#include "stats/silhouette.h"

namespace simprof::stats {
namespace {

// The exact failing input: two points in cluster 0, one singleton cluster 1.
//   A=0, B=1 (cluster 0, centroid 0.5), C=10 (cluster 1, centroid 10).
struct SingletonFixture {
  Matrix points{3, 1};
  Matrix centers{2, 1};
  std::vector<std::size_t> labels{0, 0, 1};
  SingletonFixture() {
    points.at(0, 0) = 0.0;
    points.at(1, 0) = 1.0;
    points.at(2, 0) = 10.0;
    centers.at(0, 0) = 0.5;
    centers.at(1, 0) = 10.0;
  }
};

TEST(SimplifiedSilhouette, SingletonClusterScoresZero) {
  SingletonFixture f;
  // s(A) = (10-0.5)/10, s(B) = (9-0.5)/9, s(C) = 0 (singleton).
  const double expected = (9.5 / 10.0 + 8.5 / 9.0 + 0.0) / 3.0;
  const double inflated = (9.5 / 10.0 + 8.5 / 9.0 + 1.0) / 3.0;  // old bug
  const double s = simplified_silhouette(f.points, f.centers, f.labels);
  EXPECT_NEAR(s, expected, 1e-12);
  EXPECT_LT(s, inflated - 0.1);
}

TEST(ExactSilhouette, SingletonClusterScoresZero) {
  SingletonFixture f;
  // s(A) = (10-1)/10, s(B) = (9-1)/9, s(C) = 0 (singleton).
  const double expected = (9.0 / 10.0 + 8.0 / 9.0 + 0.0) / 3.0;
  const double s = exact_silhouette(f.points, f.labels, 2);
  EXPECT_NEAR(s, expected, 1e-12);
}

TEST(SimplifiedSilhouette, AllSingletonsScoreZero) {
  Matrix points(2, 1);
  points.at(0, 0) = 0.0;
  points.at(1, 0) = 5.0;
  Matrix centers = points;
  const std::vector<std::size_t> labels{0, 1};
  EXPECT_DOUBLE_EQ(simplified_silhouette(points, centers, labels), 0.0);
}

}  // namespace
}  // namespace simprof::stats
