// Unit tests for the matrix type, k-means clustering, silhouette scoring,
// and the univariate-regression feature selection.
#include <gtest/gtest.h>

#include <algorithm>
#include <cmath>
#include <set>

#include "stats/feature_select.h"
#include "stats/kmeans.h"
#include "stats/matrix.h"
#include "stats/silhouette.h"
#include "support/assert.h"
#include "support/rng.h"

namespace simprof::stats {
namespace {

Matrix gaussian_blobs(const std::vector<std::pair<double, double>>& centers,
                      std::size_t per_blob, double spread, Rng& rng) {
  Matrix m(centers.size() * per_blob, 2);
  std::size_t r = 0;
  for (const auto& [cx, cy] : centers) {
    for (std::size_t i = 0; i < per_blob; ++i, ++r) {
      m.at(r, 0) = cx + spread * rng.next_gaussian();
      m.at(r, 1) = cy + spread * rng.next_gaussian();
    }
  }
  return m;
}

TEST(Matrix, IndexingAndRows) {
  Matrix m(2, 3);
  m.at(1, 2) = 5.0;
  EXPECT_DOUBLE_EQ(m.row(1)[2], 5.0);
  EXPECT_THROW(m.at(2, 0), ContractViolation);
  EXPECT_THROW(m.row(5), ContractViolation);
}

TEST(Matrix, SelectColumnsPreservesOrder) {
  Matrix m(2, 3);
  for (std::size_t r = 0; r < 2; ++r) {
    for (std::size_t c = 0; c < 3; ++c) {
      m.at(r, c) = static_cast<double>(10 * r + c);
    }
  }
  std::vector<std::size_t> cols{2, 0};
  Matrix s = m.select_columns(cols);
  EXPECT_EQ(s.cols(), 2u);
  EXPECT_DOUBLE_EQ(s.at(0, 0), 2.0);
  EXPECT_DOUBLE_EQ(s.at(0, 1), 0.0);
  EXPECT_DOUBLE_EQ(s.at(1, 0), 12.0);
}

TEST(Matrix, NormalizeRowsL1) {
  Matrix m(2, 2);
  m.at(0, 0) = 1.0;
  m.at(0, 1) = 3.0;
  // Row 1 is all zeros and must stay untouched.
  m.normalize_rows_l1();
  EXPECT_DOUBLE_EQ(m.at(0, 0), 0.25);
  EXPECT_DOUBLE_EQ(m.at(0, 1), 0.75);
  EXPECT_DOUBLE_EQ(m.at(1, 0), 0.0);
}

TEST(Matrix, Distances) {
  std::vector<double> a{0.0, 3.0};
  std::vector<double> b{4.0, 0.0};
  EXPECT_DOUBLE_EQ(squared_distance(a, b), 25.0);
  EXPECT_DOUBLE_EQ(distance(a, b), 5.0);
}

TEST(KMeans, RecoversWellSeparatedBlobs) {
  Rng rng(17);
  Matrix pts = gaussian_blobs({{0, 0}, {10, 0}, {0, 10}}, 40, 0.3, rng);
  KMeansResult res = kmeans(pts, 3, rng);
  // All points of a blob share a label, and the three blobs get 3 labels.
  std::set<std::size_t> blob_labels;
  for (std::size_t b = 0; b < 3; ++b) {
    const std::size_t l = res.labels[b * 40];
    blob_labels.insert(l);
    for (std::size_t i = 0; i < 40; ++i) EXPECT_EQ(res.labels[b * 40 + i], l);
  }
  EXPECT_EQ(blob_labels.size(), 3u);
}

TEST(KMeans, KEqualsOneGivesCentroid) {
  Rng rng(3);
  Matrix pts(4, 1);
  pts.at(0, 0) = 1;
  pts.at(1, 0) = 2;
  pts.at(2, 0) = 3;
  pts.at(3, 0) = 6;
  KMeansResult res = kmeans(pts, 1, rng);
  EXPECT_NEAR(res.centers.at(0, 0), 3.0, 1e-9);
}

TEST(KMeans, KEqualsNPutsEveryPointAlone) {
  Rng rng(4);
  Matrix pts(5, 1);
  for (std::size_t i = 0; i < 5; ++i) pts.at(i, 0) = static_cast<double>(i);
  KMeansResult res = kmeans(pts, 5, rng);
  std::set<std::size_t> labels(res.labels.begin(), res.labels.end());
  EXPECT_EQ(labels.size(), 5u);
  EXPECT_NEAR(res.inertia, 0.0, 1e-12);
}

TEST(KMeans, InvalidKThrows) {
  Rng rng(1);
  Matrix pts(3, 1);
  EXPECT_THROW(kmeans(pts, 0, rng), ContractViolation);
  EXPECT_THROW(kmeans(pts, 4, rng), ContractViolation);
}

TEST(KMeans, NearestCenter) {
  Matrix centers(2, 2);
  centers.at(0, 0) = 0.0;
  centers.at(1, 0) = 10.0;
  std::vector<double> p{7.0, 0.0};
  EXPECT_EQ(nearest_center(centers, p), 1u);
}

TEST(Silhouette, HighForSeparatedLowForMixed) {
  Rng rng(23);
  Matrix good = gaussian_blobs({{0, 0}, {20, 0}}, 30, 0.2, rng);
  std::vector<std::size_t> good_labels(60);
  for (std::size_t i = 30; i < 60; ++i) good_labels[i] = 1;
  const double s_good = exact_silhouette(good, good_labels, 2);
  EXPECT_GT(s_good, 0.9);

  // Random labels over one blob: silhouette near (or below) zero.
  Matrix bad = gaussian_blobs({{0, 0}}, 60, 1.0, rng);
  std::vector<std::size_t> bad_labels(60);
  for (std::size_t i = 0; i < 60; ++i) bad_labels[i] = i % 2;
  EXPECT_LT(exact_silhouette(bad, bad_labels, 2), 0.2);
}

TEST(Silhouette, SimplifiedTracksExactOrdering) {
  Rng rng(31);
  Matrix pts = gaussian_blobs({{0, 0}, {8, 0}, {0, 8}}, 25, 0.5, rng);
  // Score the same data under k = 2, 3, 4 clusterings; both silhouette
  // variants must agree that k = 3 is at least as good as 2 and 4.
  double exact[3], simple[3];
  for (std::size_t k = 2; k <= 4; ++k) {
    KMeansResult r = kmeans(pts, k, rng);
    exact[k - 2] = exact_silhouette(pts, r.labels, k);
    simple[k - 2] = simplified_silhouette(pts, r.centers, r.labels);
  }
  EXPECT_GE(exact[1], exact[0]);
  EXPECT_GE(exact[1], exact[2]);
  EXPECT_GE(simple[1], simple[0]);
  EXPECT_GE(simple[1], simple[2]);
}

TEST(Silhouette, FewerThanTwoClustersScoresZero) {
  Matrix pts(3, 1);
  std::vector<std::size_t> labels{0, 0, 0};
  EXPECT_DOUBLE_EQ(exact_silhouette(pts, labels, 1), 0.0);
  Matrix centers(1, 1);
  EXPECT_DOUBLE_EQ(simplified_silhouette(pts, centers, labels), 0.0);
}

TEST(ChooseK, FindsThreeBlobs) {
  Rng rng(41);
  Matrix pts = gaussian_blobs({{0, 0}, {10, 0}, {0, 10}}, 30, 0.3, rng);
  ChooseKResult r = choose_k(pts, rng);
  EXPECT_EQ(r.k, 3u);
}

TEST(ChooseK, SingleBlobChoosesKOne) {
  // One diffuse blob: every k ≥ 2 silhouette is mediocre, so the k = 1
  // baseline score wins under the 90% rule (paper: grep_sp has one phase).
  Rng rng(43);
  Matrix pts = gaussian_blobs({{0, 0}}, 80, 1.0, rng);
  ChooseKResult r = choose_k(pts, rng);
  EXPECT_EQ(r.k, 1u);
}

TEST(ChooseK, RespectsMaxK) {
  Rng rng(47);
  Matrix pts = gaussian_blobs({{0, 0}, {10, 0}}, 10, 0.1, rng);
  ChooseKConfig cfg;
  cfg.max_k = 1;
  ChooseKResult r = choose_k(pts, rng, cfg);
  EXPECT_EQ(r.k, 1u);
  EXPECT_EQ(r.scores.size(), 1u);
}

TEST(FRegression, ScoresCorrelatedFeatureHighest) {
  Rng rng(51);
  const std::size_t n = 200;
  Matrix x(n, 3);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = rng.next_double();
    x.at(i, 0) = rng.next_double();            // noise
    x.at(i, 1) = y[i] + 0.05 * rng.next_gaussian();  // strong signal
    x.at(i, 2) = 0.5;                          // constant → score 0
  }
  const auto scores = f_regression(x, y);
  EXPECT_GT(scores[1], scores[0]);
  EXPECT_DOUBLE_EQ(scores[2], 0.0);

  const auto top1 = top_k_indices(scores, 1);
  ASSERT_EQ(top1.size(), 1u);
  EXPECT_EQ(top1[0], 1u);
}

TEST(FRegression, TopKDropsZeroScoresWhenPositiveOnly) {
  std::vector<double> scores{0.0, 5.0, 0.0, 2.0};
  const auto idx = top_k_indices(scores, 4, /*positive_only=*/true);
  EXPECT_EQ(idx, (std::vector<std::size_t>{1, 3}));
  const auto all = top_k_indices(scores, 4, /*positive_only=*/false);
  EXPECT_EQ(all.size(), 4u);
}

TEST(FRegression, OutputSortedAscendingForStableColumnSelection) {
  std::vector<double> scores{3.0, 9.0, 1.0, 7.0};
  const auto idx = top_k_indices(scores, 3);
  EXPECT_TRUE(std::is_sorted(idx.begin(), idx.end()));
  EXPECT_EQ(idx, (std::vector<std::size_t>{0, 1, 3}));
}

TEST(ChooseK, ZeroMaxKClampsToOne) {
  // max_k = 0 used to leave the sweep scoring nothing (UB in the best-score
  // reduction); it must clamp up to a defined single-cluster sweep.
  Rng rng(61);
  Matrix pts = gaussian_blobs({{0, 0}, {10, 0}}, 10, 0.1, rng);
  ChooseKConfig cfg;
  cfg.max_k = 0;
  ChooseKResult r = choose_k(pts, rng, cfg);
  EXPECT_EQ(r.k, 1u);
  ASSERT_EQ(r.scores.size(), 1u);
  EXPECT_TRUE(std::isfinite(r.scores[0]));
}

TEST(ChooseK, FewerPointsThanMaxKClampsSweep) {
  // n = 1 and n = 2 points against the default max_k = 20: the sweep clamps
  // to the population instead of asking k-means for k > n.
  for (const std::size_t n : {std::size_t{1}, std::size_t{2}}) {
    Matrix pts(n, 2);
    for (std::size_t i = 0; i < n; ++i) {
      pts.at(i, 0) = static_cast<double>(i);
      pts.at(i, 1) = 1.0;
    }
    Rng rng(67 + n);
    ChooseKResult r = choose_k(pts, rng);
    EXPECT_GE(r.k, 1u);
    EXPECT_LE(r.k, n);
    EXPECT_EQ(r.scores.size(), n);
    for (double s : r.scores) EXPECT_TRUE(std::isfinite(s));
  }
}

TEST(ChooseK, AllIdenticalRowsCollapseToOneClusterWithoutNaN) {
  Matrix pts(12, 3);
  for (std::size_t i = 0; i < pts.rows(); ++i) {
    pts.at(i, 0) = 0.25;
    pts.at(i, 1) = 0.5;
    pts.at(i, 2) = 0.25;
  }
  Rng rng(71);
  ChooseKResult r = choose_k(pts, rng);
  EXPECT_EQ(r.k, 1u);
  for (double s : r.scores) {
    EXPECT_TRUE(std::isfinite(s)) << "silhouette must stay defined";
  }
}

TEST(Silhouette, AllIdenticalPointsScoreZeroNotNaN) {
  // Zero-variance geometry: a(i) = b(i) = 0 for every point; the guarded
  // denominator must yield 0, not 0/0.
  Matrix pts(10, 2);
  for (std::size_t i = 0; i < pts.rows(); ++i) {
    pts.at(i, 0) = 1.0;
    pts.at(i, 1) = 2.0;
  }
  std::vector<std::size_t> labels(10, 0);
  for (std::size_t i = 5; i < 10; ++i) labels[i] = 1;
  const double exact = exact_silhouette(pts, labels, 2, 1);
  const double sampled = sampled_silhouette(pts, labels, 2, 8, 13, 1);
  EXPECT_EQ(exact, 0.0);
  EXPECT_EQ(sampled, 0.0);
}

TEST(FRegression, ConstantTargetScoresEverythingZero) {
  // Zero-variance IPC (all-identical units): syy_centered = 0 must zero all
  // scores — the selection then comes back empty and the caller collapses
  // to a single phase — rather than dividing by it.
  Rng rng(73);
  const std::size_t n = 32;
  Matrix x(n, 2);
  std::vector<double> y(n, 1.25);
  for (std::size_t i = 0; i < n; ++i) {
    x.at(i, 0) = rng.next_double();
    x.at(i, 1) = rng.next_double();
  }
  for (double s : f_regression(x, y)) EXPECT_DOUBLE_EQ(s, 0.0);
}

TEST(FRegression, SingleSurvivingColumnScoresDefined) {
  const std::size_t n = 16;
  Matrix x(n, 1);
  std::vector<double> y(n);
  for (std::size_t i = 0; i < n; ++i) {
    y[i] = static_cast<double>(i);
    x.at(i, 0) = 2.0 * y[i];  // perfectly correlated single feature
  }
  const auto scores = f_regression(x, y);
  ASSERT_EQ(scores.size(), 1u);
  EXPECT_TRUE(std::isfinite(scores[0]));
  EXPECT_GT(scores[0], 0.0);
  EXPECT_EQ(top_k_indices(scores, 5), (std::vector<std::size_t>{0}));
}

TEST(MiniBatchKMeans, MovesCentersWithPerCenterLearningRate) {
  Matrix centers(2, 1);
  centers.at(0, 0) = 0.0;
  centers.at(1, 0) = 10.0;
  MiniBatchKMeans mb(centers);  // counts default to 1

  Matrix batch(3, 1);
  batch.at(0, 0) = 1.0;
  batch.at(1, 0) = 1.0;
  batch.at(2, 0) = 9.0;
  const auto labels = mb.partial_fit(batch, 1);
  EXPECT_EQ(labels, (std::vector<std::size_t>{0, 0, 1}));

  // Center 0 sees two pulls: 0 → 0 + (1−0)/2 = 0.5 → 0.5 + (1−0.5)/3.
  EXPECT_DOUBLE_EQ(mb.centers().at(0, 0), 0.5 + (1.0 - 0.5) / 3.0);
  // Center 1 sees one: 10 → 10 + (9−10)/2.
  EXPECT_DOUBLE_EQ(mb.centers().at(1, 0), 9.5);
  EXPECT_EQ(mb.counts(), (std::vector<std::uint64_t>{3, 2}));
}

TEST(MiniBatchKMeans, BitIdenticalAcrossThreadCounts) {
  Rng rng(79);
  Matrix batch = gaussian_blobs({{0, 0}, {8, 8}, {-4, 6}}, 40, 1.0, rng);
  Matrix centers(3, 2);
  centers.at(0, 0) = 0.0;
  centers.at(0, 1) = 0.0;
  centers.at(1, 0) = 8.0;
  centers.at(1, 1) = 8.0;
  centers.at(2, 0) = -4.0;
  centers.at(2, 1) = 6.0;

  MiniBatchKMeans a(centers), b(centers);
  const auto la = a.partial_fit(batch, 1);
  const auto lb = b.partial_fit(batch, 8);
  EXPECT_EQ(la, lb);
  const auto fa = a.centers().flat();
  const auto fb = b.centers().flat();
  ASSERT_EQ(fa.size(), fb.size());
  for (std::size_t i = 0; i < fa.size(); ++i) {
    EXPECT_EQ(fa[i], fb[i]) << "flat index " << i;
  }
}

TEST(MiniBatchKMeans, EmptyBatchIsANoOp) {
  Matrix centers(2, 2);
  centers.at(1, 0) = 3.0;
  MiniBatchKMeans mb(centers);
  Matrix batch(0, 2);
  EXPECT_TRUE(mb.partial_fit(batch).empty());
  EXPECT_EQ(mb.counts(), (std::vector<std::uint64_t>{1, 1}));
}

// Property: k-means inertia never increases when k grows (best-of restarts
// may fluctuate slightly, so allow a tiny tolerance).
class KMeansInertia : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(KMeansInertia, InertiaNonIncreasingInK) {
  Rng rng(GetParam());
  Matrix pts = gaussian_blobs({{0, 0}, {5, 5}, {9, 1}}, 25, 0.8, rng);
  double prev = 1e300;
  for (std::size_t k = 1; k <= 6; ++k) {
    KMeansResult r = kmeans(pts, k, rng);
    EXPECT_LE(r.inertia, prev * 1.05) << "k=" << k;
    prev = r.inertia;
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, KMeansInertia,
                         ::testing::Values(11, 22, 33, 44, 55));

}  // namespace
}  // namespace simprof::stats
