// Self-tests for the verification subsystem (src/verify): the harness that
// checks everything else must itself be checked. Covers (a) seeded
// reproducibility — same seed → same corruptions → same verdict fingerprint,
// (b) the default configuration passing on the production implementations,
// and (c) the mutation smoke test — a deliberately broken allocator handed
// to the oracle harness must turn checks red, proving the oracle can fail.
#include <gtest/gtest.h>

#include <cstddef>
#include <cstdint>
#include <span>
#include <vector>

#include "obs/metrics.h"
#include "stats/stratified.h"
#include "verify/fault_inject.h"
#include "verify/oracle.h"
#include "verify/roundtrip.h"
#include "verify/verify.h"

namespace simprof::verify {
namespace {

std::string failure_names(const VerifyReport& r) {
  std::string out;
  for (const auto& c : r.checks) {
    if (!c.passed) out += c.name + ": " + c.detail + "\n";
  }
  return out;
}

TEST(FaultInjection, SameSeedSameFingerprint) {
  const FaultConfig cfg{.seed = 42, .cases = 120};
  const auto a = verify_archive_robustness(cfg);
  const auto b = verify_archive_robustness(cfg);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
  EXPECT_EQ(a.cases_run, 120u);
  EXPECT_EQ(b.cases_run, 120u);
}

TEST(FaultInjection, DifferentSeedsDivergeInFingerprint) {
  const auto a = verify_archive_robustness({.seed = 42, .cases = 120});
  const auto b = verify_archive_robustness({.seed = 43, .cases = 120});
  EXPECT_NE(a.fingerprint, b.fingerprint);
}

TEST(FaultInjection, FiveHundredCasesAllAnswerWithTypedErrors) {
  auto& injected = obs::metrics().counter("verify.faults_injected");
  const auto before = injected.value();
  const auto r = verify_archive_robustness({.seed = 1, .cases = 500});
  EXPECT_TRUE(r.ok()) << failure_names(r);
  EXPECT_EQ(r.cases_run, 500u);
  EXPECT_EQ(injected.value() - before, 500u);
}

TEST(Roundtrip, AllChecksPassIncludingGoldenArchive) {
  const auto r = verify_roundtrip(7);
  EXPECT_TRUE(r.ok()) << failure_names(r);
  bool saw_golden = false;
  for (const auto& c : r.checks) {
    if (c.name == "roundtrip.golden_archive_decodes") saw_golden = true;
  }
  EXPECT_TRUE(saw_golden);
}

TEST(Roundtrip, SameSeedSameFingerprint) {
  EXPECT_EQ(verify_roundtrip(9).fingerprint, verify_roundtrip(9).fingerprint);
}

TEST(Oracle, PassesOnProductionImplementations) {
  OracleConfig cfg;
  cfg.property_trials = 32;
  cfg.coverage_resamples = 4000;  // tolerance widens with fewer resamples
  const auto r = verify_statistics(cfg);
  EXPECT_TRUE(r.ok()) << failure_names(r);
}

TEST(Oracle, MutationSmokeCatchesBrokenAllocation) {
  // An allocator that dumps every slot into stratum 0 violates the Neyman
  // closed form, the stratum caps, and the Neyman-beats-proportional
  // property. If the oracle stays green here, the oracle is broken.
  auto& failures = obs::metrics().counter("verify.oracle_failures");
  const auto before = failures.value();
  OracleConfig cfg;
  cfg.property_trials = 16;
  cfg.coverage_resamples = 500;
  cfg.allocation = [](std::span<const stats::Stratum> strata,
                      std::size_t total, std::size_t) {
    std::vector<std::size_t> a(strata.size(), 0);
    if (!a.empty()) a[0] = total;
    return a;
  };
  const auto r = verify_statistics(cfg);
  EXPECT_FALSE(r.ok());
  EXPECT_GE(r.failures(), 2u);
  EXPECT_GT(failures.value(), before);
}

TEST(Oracle, SameSeedSameFingerprint) {
  OracleConfig cfg;
  cfg.property_trials = 8;
  cfg.coverage_resamples = 500;
  const auto a = verify_statistics(cfg);
  const auto b = verify_statistics(cfg);
  EXPECT_EQ(a.fingerprint, b.fingerprint);
}

TEST(LabCache, CorruptedCacheEntriesDegradeToMissesAndRecover) {
  const auto r = verify_lab_cache_recovery(11);
  EXPECT_TRUE(r.ok()) << failure_names(r);
}

TEST(CheckpointFaults, SameSeedSameFingerprint) {
  const FaultConfig cfg{.seed = 42, .cases = 120};
  EXPECT_EQ(verify_checkpoint_robustness(cfg).fingerprint,
            verify_checkpoint_robustness(cfg).fingerprint);
}

TEST(CheckpointFaults, SweepAnswersWithTypedErrorsAndGoldenArchiveHolds) {
  auto& injected = obs::metrics().counter("verify.ckpt_faults_injected");
  const auto before = injected.value();
  const auto r = verify_checkpoint_robustness({.seed = 1, .cases = 400});
  EXPECT_TRUE(r.ok()) << failure_names(r);
  EXPECT_EQ(r.cases_run, 400u);
  EXPECT_EQ(injected.value() - before, 400u);
  bool saw_golden = false;
  for (const auto& c : r.checks) {
    if (c.name == "ckpt.golden_archive_stable") saw_golden = true;
  }
  EXPECT_TRUE(saw_golden);
}

TEST(CheckpointFaults, CorruptedArchivesFallBackToExactReexecution) {
  const auto r = verify_checkpoint_recovery(13);
  EXPECT_TRUE(r.ok()) << failure_names(r);
}

}  // namespace
}  // namespace simprof::verify
