// Unit tests for the cache model and memory hierarchy: set-associative LRU
// semantics, pressure-partitioned LLC, migration flushes and cost charging.
#include <gtest/gtest.h>

#include "hw/cache.h"
#include "hw/memory_system.h"
#include "support/assert.h"

namespace simprof::hw {
namespace {

CacheConfig small_cache() {
  // 4 sets × 4 ways of 64B lines = 1 KiB.
  return CacheConfig{1024, 4};
}

TEST(Cache, ColdMissThenHit) {
  Cache c(small_cache());
  EXPECT_FALSE(c.access(0));
  EXPECT_TRUE(c.access(0));
  EXPECT_EQ(c.stats().misses, 1u);
  EXPECT_EQ(c.stats().hits, 1u);
}

TEST(Cache, LruEvictionOrder) {
  Cache c(small_cache());  // 4 ways; lines k*4 map to set 0
  for (LineAddr l = 0; l < 4; ++l) c.access(l * 4);  // fill set 0
  EXPECT_TRUE(c.access(0));      // 0 becomes MRU
  EXPECT_FALSE(c.access(16));    // evicts LRU = line 4
  EXPECT_TRUE(c.access(0));      // still resident
  EXPECT_FALSE(c.access(4));     // was evicted
}

TEST(Cache, SetsAreIndependent) {
  Cache c(small_cache());
  c.access(0);   // set 0
  c.access(1);   // set 1
  c.access(2);   // set 2
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(1));
  EXPECT_TRUE(c.access(2));
}

TEST(Cache, FlushInvalidatesEverything) {
  Cache c(small_cache());
  c.access(0);
  c.access(5);
  c.flush();
  EXPECT_FALSE(c.access(0));
  EXPECT_FALSE(c.access(5));
}

TEST(Cache, EffectiveWaysShrinkCapacity) {
  Cache c(small_cache());
  c.set_effective_ways(2);
  // Fill set 0 with 2 lines: both fit.
  c.access(0);
  c.access(4);
  EXPECT_TRUE(c.access(0));
  EXPECT_TRUE(c.access(4));
  // A third line pushes the LRU of the *effective* window out.
  c.access(8);
  EXPECT_FALSE(c.access(0));  // outside the 2-way effective window
}

TEST(Cache, ReleasingPressureRestoresResidency) {
  Cache c(small_cache());
  c.access(0);
  c.access(4);
  c.access(8);  // 3 resident lines in set 0 (4 physical ways)
  c.set_effective_ways(1);
  EXPECT_FALSE(c.access(4));  // outside pressure window (counts as miss)
  c.set_effective_ways(4);
  EXPECT_TRUE(c.access(8));   // still physically resident
}

TEST(Cache, EffectiveWaysClampedToConfig) {
  Cache c(small_cache());
  c.set_effective_ways(0);
  EXPECT_EQ(c.effective_ways(), 1u);
  c.set_effective_ways(100);
  EXPECT_EQ(c.effective_ways(), 4u);
}

TEST(Cache, RejectsDegenerateGeometry) {
  EXPECT_THROW(Cache(CacheConfig{64, 8}), ContractViolation);  // < one set
}

TEST(CacheStats, MissRate) {
  Cache c(small_cache());
  c.access(0);
  c.access(0);
  c.access(0);
  c.access(64);
  EXPECT_DOUBLE_EQ(c.stats().miss_rate(), 0.5);
}

MemorySystemConfig tiny_memory() {
  MemorySystemConfig cfg;
  cfg.l1 = {1024, 4};
  cfg.l2 = {4096, 4};
  cfg.llc = {16384, 8};
  cfg.num_cores = 2;
  return cfg;
}

TEST(MemorySystem, CostsIncreaseDownTheHierarchy) {
  MemorySystem m(tiny_memory());
  const auto& cost = m.config().cost;
  MemRef ref{0, false, false};
  EXPECT_DOUBLE_EQ(m.access(0, ref), cost.dram_cycles);   // cold everywhere
  EXPECT_DOUBLE_EQ(m.access(0, ref), cost.l1_hit_cycles); // now in L1
}

TEST(MemorySystem, PrefetchableMissesAreCheaper) {
  MemorySystem m(tiny_memory());
  MemRef pref{100, false, true};
  MemRef rand{200, false, false};
  EXPECT_LT(m.access(0, pref), m.access(1, rand));
}

TEST(MemorySystem, L2CatchesL1Evictions) {
  MemorySystem m(tiny_memory());
  const auto& cost = m.config().cost;
  // Touch 8 lines mapping to L1 set 0 (L1: 4 sets → stride 4); L1 holds 4,
  // L2 (16 sets... stride 16 needed) — use lines 0,4,8,…,28: all L1 set 0.
  for (LineAddr l = 0; l < 8; ++l) m.access(0, MemRef{l * 4, false, false});
  // Line 0 was evicted from L1 but lives in L2 (L2 set = 0 mod 16 → lines
  // 0 and 16 share an L2 set; 2 of them at most → resident).
  EXPECT_DOUBLE_EQ(m.access(0, MemRef{0, false, false}), cost.l2_hit_cycles);
}

TEST(MemorySystem, PrivateCachesIsolatedSharedLlcVisible) {
  MemorySystem m(tiny_memory());
  const auto& cost = m.config().cost;
  m.access(0, MemRef{7, false, false});  // core 0 pulls line into L1+L2+LLC
  // Core 1 misses privately but hits the shared LLC.
  EXPECT_DOUBLE_EQ(m.access(1, MemRef{7, false, false}),
                   cost.llc_hit_cycles);
}

TEST(MemorySystem, MigrationFlushesPrivateOnly) {
  MemorySystem m(tiny_memory());
  const auto& cost = m.config().cost;
  m.access(0, MemRef{3, false, false});
  m.migrate(0);
  // Private caches are cold, LLC still warm.
  EXPECT_DOUBLE_EQ(m.access(0, MemRef{3, false, false}),
                   cost.llc_hit_cycles);
}

TEST(MemorySystem, PressureShrinksLlcWaysSublinearly) {
  // Effective associativity is ways/sqrt(p): concurrent threads overlap in
  // time, so a strict 1/p partition would overstate interference swings.
  MemorySystem m(tiny_memory());  // 8 LLC ways
  m.set_llc_pressure(4);
  EXPECT_EQ(m.llc().effective_ways(), 4u);  // 8 / sqrt(4)
  m.set_llc_pressure(100);
  EXPECT_EQ(m.llc().effective_ways(), 1u);  // clamped at one way
  m.set_llc_pressure(1);
  EXPECT_EQ(m.llc().effective_ways(), 8u);
  m.set_llc_pressure(2);
  EXPECT_EQ(m.llc().effective_ways(), 5u);  // floor(8 / 1.414)
}

TEST(MemorySystem, CoreOutOfRangeThrows) {
  MemorySystem m(tiny_memory());
  EXPECT_THROW(m.access(2, MemRef{}), ContractViolation);
  EXPECT_THROW(m.migrate(9), ContractViolation);
}

TEST(PmuCounters, DeltaSince) {
  PmuCounters a;
  a.instructions = 100;
  a.cycles = 200;
  a.llc_misses = 5;
  PmuCounters b = a;
  b.instructions = 150;
  b.cycles = 300;
  b.llc_misses = 9;
  const PmuCounters d = b.delta_since(a);
  EXPECT_EQ(d.instructions, 50u);
  EXPECT_EQ(d.cycles, 100u);
  EXPECT_EQ(d.llc_misses, 4u);
  EXPECT_DOUBLE_EQ(d.cpi(), 2.0);
  EXPECT_DOUBLE_EQ(d.ipc(), 0.5);
}

// Parameterized LRU property: for any associativity, a set accessed with a
// cyclic pattern of (ways + 1) distinct lines never hits (classic LRU
// thrash), while a cycle of exactly `ways` lines always hits after warmup.
class LruProperty : public ::testing::TestWithParam<std::uint32_t> {};

TEST_P(LruProperty, CyclicThrashAndFit) {
  const std::uint32_t ways = GetParam();
  Cache c(CacheConfig{static_cast<std::uint64_t>(ways) * 2 * kLineBytes,
                      ways});  // 2 sets
  const std::size_t sets = c.config().num_sets();
  // Lines mapping to set 0: multiples of `sets`.
  auto line = [&](std::uint32_t i) { return static_cast<LineAddr>(i) * sets; };

  // Fit: cycle over exactly `ways` lines.
  for (std::uint32_t round = 0; round < 3; ++round) {
    for (std::uint32_t i = 0; i < ways; ++i) c.access(line(i));
  }
  EXPECT_EQ(c.stats().misses, ways);  // only the cold round missed

  // Thrash: cycle over ways + 1 lines — every access misses under LRU.
  Cache t(CacheConfig{static_cast<std::uint64_t>(ways) * 2 * kLineBytes,
                      ways});
  for (std::uint32_t round = 0; round < 3; ++round) {
    for (std::uint32_t i = 0; i < ways + 1; ++i) t.access(line(i));
  }
  EXPECT_EQ(t.stats().hits, 0u);
}

INSTANTIATE_TEST_SUITE_P(Associativities, LruProperty,
                         ::testing::Values(1, 2, 4, 8, 16));

}  // namespace
}  // namespace simprof::hw
