// Functional tests for mini-GraphX: connected components against union-find
// ground truth, PageRank invariants, frontier shrinkage and stage structure.
#include <gtest/gtest.h>

#include <cmath>
#include <numeric>

#include "data/graph.h"
#include "data/kronecker.h"
#include "minispark/graphx.h"
#include "test_util.h"

namespace simprof::spark {
namespace {

using data::Edge;
using data::Graph;
using data::VertexId;

TEST(GraphX, ConnectedComponentsMatchesUnionFindOnSmallGraph) {
  std::vector<Edge> edges{{0, 1}, {1, 2}, {3, 4}, {5, 6}, {6, 7}, {4, 3}};
  const Graph g = Graph::from_edges(9, edges, /*symmetrize=*/true);

  exec::Cluster cluster(testing::tiny_cluster_config());
  SparkContext sc(cluster);
  GraphX graphx(sc, g);
  const auto labels = graphx.connected_components();
  const auto truth = data::connected_components_ground_truth(g);
  EXPECT_EQ(labels, truth);
}

TEST(GraphX, ConnectedComponentsOnKroneckerMatchesGroundTruth) {
  data::KroneckerConfig cfg;
  cfg.scale = 9;
  cfg.edge_factor = 4.0;
  const Graph g = data::kronecker_graph(cfg, /*symmetrize=*/true);

  exec::Cluster cluster(testing::tiny_cluster_config());
  SparkContext sc(cluster);
  GraphX graphx(sc, g);
  EXPECT_EQ(graphx.connected_components(),
            data::connected_components_ground_truth(g));
  EXPECT_GT(graphx.stats().iterations, 1u);
}

TEST(GraphX, IterationCapRespected) {
  // A path graph needs ~n iterations to converge; cap at 2.
  std::vector<Edge> edges;
  for (VertexId v = 0; v + 1 < 20; ++v) edges.push_back({v, v + 1});
  const Graph g = Graph::from_edges(20, edges, true);
  exec::Cluster cluster(testing::tiny_cluster_config());
  SparkContext sc(cluster);
  GraphX graphx(sc, g);
  graphx.connected_components(/*max_iterations=*/2);
  EXPECT_EQ(graphx.stats().iterations, 2u);
}

TEST(GraphX, PagerankMassAndHubOrdering) {
  // Star graph: everyone points at vertex 0.
  std::vector<Edge> edges;
  for (VertexId v = 1; v < 30; ++v) edges.push_back({v, 0});
  const Graph g = Graph::from_edges(30, edges, false);

  exec::Cluster cluster(testing::tiny_cluster_config());
  SparkContext sc(cluster);
  GraphX graphx(sc, g);
  const auto ranks = graphx.pagerank(15);
  ASSERT_EQ(ranks.size(), 30u);
  for (VertexId v = 1; v < 30; ++v) {
    EXPECT_GT(ranks[0], ranks[v] * 5);  // the hub dominates
    EXPECT_NEAR(ranks[v], 0.15, 1e-6);  // leaves get only the base rank
  }
  // With damping d, total mass converges near n·(1−d) + d·(incoming mass);
  // for the star: leaves hold 29·0.15, hub holds 0.15 + 0.85·(29·0.15)…
  const double total = std::accumulate(ranks.begin(), ranks.end(), 0.0);
  EXPECT_GT(total, 29 * 0.15);
  EXPECT_LT(total, 30.0);
}

TEST(GraphX, PagerankUniformOnRegularRing) {
  std::vector<Edge> edges;
  for (VertexId v = 0; v < 24; ++v) edges.push_back({v, (v + 1) % 24});
  const Graph g = Graph::from_edges(24, edges, false);
  exec::Cluster cluster(testing::tiny_cluster_config());
  SparkContext sc(cluster);
  GraphX graphx(sc, g);
  const auto ranks = graphx.pagerank(20);
  for (double r : ranks) EXPECT_NEAR(r, 1.0, 1e-6);
}

TEST(GraphX, MessageVolumeShrinksAsLabelsConverge) {
  data::KroneckerConfig cfg;
  cfg.scale = 8;
  cfg.edge_factor = 6.0;
  const Graph g = data::kronecker_graph(cfg, true);
  exec::Cluster cluster(testing::tiny_cluster_config());
  SparkContext sc(cluster);
  GraphX graphx(sc, g);
  graphx.connected_components();
  // Total messages must be far below iterations × vertices (frontier decay —
  // the source of the paper's input-sensitive aggregateUsingIndex phase).
  EXPECT_LT(graphx.stats().total_messages,
            static_cast<std::uint64_t>(graphx.stats().iterations) *
                g.num_vertices());
}

TEST(GraphX, RunsStagesPerIteration) {
  std::vector<Edge> edges{{0, 1}, {1, 2}};
  const Graph g = Graph::from_edges(3, edges, true);
  exec::Cluster cluster(testing::tiny_cluster_config());
  SparkContext sc(cluster);
  GraphX graphx(sc, g);
  graphx.connected_components();
  // load + per-iteration (aggregate + join) stages.
  EXPECT_GE(sc.stages_run(), 1 + 2 * (graphx.stats().iterations - 1));
}

TEST(GraphX, EmptyGraphRejected) {
  const Graph g;
  exec::Cluster cluster(testing::tiny_cluster_config());
  SparkContext sc(cluster);
  EXPECT_THROW(GraphX(sc, g), ContractViolation);
}

}  // namespace
}  // namespace simprof::spark
