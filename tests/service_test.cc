// Service daemon suite: protocol round-trips, ThroughputProbe convergence
// on synthetic saturation curves, and an in-process ServiceServer driven
// over a real Unix socket — bit-identity with the one-shot lab, N
// concurrent same-config clients collapsing to one oracle pass, typed
// over-quota / queue-full / shutting-down rejections, per-request stream
// updates under the retention quota, and graceful drain.
#include <gtest/gtest.h>

#include <unistd.h>

#include <atomic>
#include <cmath>
#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/lab.h"
#include "core/phase.h"
#include "core/sampling.h"
#include "features/feature_mode.h"
#include "obs/obs.h"
#include "service/admission.h"
#include "service/client.h"
#include "service/loadgen.h"
#include "service/protocol.h"
#include "service/server.h"
#include "support/assert.h"

namespace simprof::service {
namespace {

class ScratchDir {
 public:
  ScratchDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("simprof_svc_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
    std::filesystem::create_directories(path_);
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }
  std::string str() const { return path_.string(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

/// Small, fast lab + service configuration on a private socket and cache.
ServiceConfig small_service(const ScratchDir& dir) {
  ServiceConfig cfg;
  cfg.socket_path = dir.str() + "/sock";
  cfg.lab.scale = 0.05;
  cfg.lab.graph_scale_override = 12;
  cfg.lab.cache_dir = dir.str() + "/cache";
  cfg.admission.initial_concurrency = 2;
  cfg.admission.max_concurrency = 4;
  return cfg;
}

template <typename T>
T roundtrip(const T& v) {
  std::ostringstream os(std::ios::binary);
  BinaryWriter w(os);
  v.write(w);
  std::istringstream is(os.str());
  BinaryReader r(is);
  return T::read(r);
}

std::uint64_t counter_value(const char* name) {
  return obs::metrics().counter(name).value();
}

// ---------------------------------------------------------------------------
// Wire protocol.

TEST(ServiceProtocol, ProfileMessagesRoundTrip) {
  ProfileRequest q;
  q.workload = "grep_sp";
  q.input = "Wiki";
  q.scale = 0.125;
  q.seed = 99;
  q.analyze = 0;
  q.sample_n = 3;
  q.want_profile_bytes = 1;
  q.stream = 1;
  q.stream_retain = 77;
  q.features = 2;   // combined
  q.estimator = 1;  // two-phase
  const ProfileRequest q2 = roundtrip(q);
  EXPECT_EQ(q2.workload, q.workload);
  EXPECT_EQ(q2.input, q.input);
  EXPECT_EQ(q2.scale, q.scale);
  EXPECT_EQ(q2.seed, q.seed);
  EXPECT_EQ(q2.analyze, q.analyze);
  EXPECT_EQ(q2.sample_n, q.sample_n);
  EXPECT_EQ(q2.want_profile_bytes, q.want_profile_bytes);
  EXPECT_EQ(q2.stream, q.stream);
  EXPECT_EQ(q2.stream_retain, q.stream_retain);
  EXPECT_EQ(q2.features, q.features);
  EXPECT_EQ(q2.estimator, q.estimator);

  ProfileResult res;
  res.from_cache = 1;
  res.units = 18;
  res.methods = 7;
  res.oracle_cpi = 1.25;
  res.phase_count = 3;
  res.estimated_cpi = 1.24;
  res.standard_error = 0.01;
  res.selected_units = {2, 9, 17};
  res.weights = {0.5, 0.25, 0.25};
  res.profile_bytes = std::string("bin\0ary\x01\xff", 9);  // embedded NULs
  res.features = 1;
  res.estimator = 1;
  const ProfileResult res2 = roundtrip(res);
  EXPECT_EQ(res2.units, res.units);
  EXPECT_EQ(res2.selected_units, res.selected_units);
  EXPECT_EQ(res2.weights, res.weights);
  EXPECT_EQ(res2.profile_bytes, res.profile_bytes);
  EXPECT_EQ(res2.oracle_cpi, res.oracle_cpi);
  EXPECT_EQ(res2.features, res.features);
  EXPECT_EQ(res2.estimator, res.estimator);

  StreamUpdate u;
  u.recluster = 4;
  u.units_ingested = 120;
  u.units_retained = 50;
  u.phase_count = 2;
  u.estimated_cpi = 0.9;
  u.selected_units = {1, 2, 3};
  const StreamUpdate u2 = roundtrip(u);
  EXPECT_EQ(u2.recluster, u.recluster);
  EXPECT_EQ(u2.units_retained, u.units_retained);
  EXPECT_EQ(u2.selected_units, u.selected_units);
}

TEST(ServiceProtocol, SensitivityMeasureStatsRoundTrip) {
  SensitivityRequest s;
  s.workload = "wc_sp";
  s.references = {"grep_sp", "sort_mr"};
  s.threshold = 0.2;
  const SensitivityRequest s2 = roundtrip(s);
  EXPECT_EQ(s2.references, s.references);
  EXPECT_EQ(s2.threshold, s.threshold);

  MeasureRequest m;
  m.workload = "grep_sp";
  m.units = {0, 5, 11};
  EXPECT_EQ(roundtrip(m).units, m.units);

  MeasureResultMsg mr;
  mr.used_checkpoints = 1;
  mr.checkpoints_restored = 3;
  mr.unit_ids = {0, 5, 11};
  mr.cpis = {1.0, 1.5, 2.0};
  const MeasureResultMsg mr2 = roundtrip(mr);
  EXPECT_EQ(mr2.unit_ids, mr.unit_ids);
  EXPECT_EQ(mr2.cpis, mr.cpis);

  StatsResult st;
  st.accepted = 10;
  st.rejected = 2;
  st.admission_level = 4;
  const StatsResult st2 = roundtrip(st);
  EXPECT_EQ(st2.accepted, st.accepted);
  EXPECT_EQ(st2.admission_level, st.admission_level);
}

TEST(ServiceProtocol, HeaderValidatesMagicAndVersion) {
  const std::string ok = pack_message(MsgKind::kProfileRequest, 42);
  std::istringstream is(ok);
  BinaryReader r(is);
  const MessageHeader h = read_header(r);
  EXPECT_EQ(h.kind, MsgKind::kProfileRequest);
  EXPECT_EQ(h.request_id, 42u);

  std::string bad = ok;
  bad[0] = 'X';  // corrupt the magic
  std::istringstream bis(bad);
  BinaryReader br(bis);
  EXPECT_THROW(read_header(br), SerializeError);
}

TEST(ServiceProtocol, StatusTaxonomy) {
  EXPECT_TRUE(is_rejection(Status::kOverQuota));
  EXPECT_TRUE(is_rejection(Status::kQueueFull));
  EXPECT_TRUE(is_rejection(Status::kShuttingDown));
  EXPECT_FALSE(is_rejection(Status::kOk));
  EXPECT_FALSE(is_rejection(Status::kBadRequest));
  EXPECT_EQ(to_string(Status::kOverQuota), "over_quota");
}

// ---------------------------------------------------------------------------
// Throughput-probing admission control, driven on synthetic saturation
// curves (the probe is pure state, so these converge deterministically).

/// Concave saturation curve with its knee at `knee`: linear gain up to the
/// knee, then slight degradation (contention) past it.
double synthetic_throughput(std::size_t level, std::size_t knee) {
  const auto l = static_cast<double>(level);
  const auto k = static_cast<double>(knee);
  return level <= knee ? 10.0 * l : 10.0 * k - 0.5 * (l - k);
}

AdmissionConfig probe_config(std::size_t initial) {
  AdmissionConfig cfg;
  cfg.min_concurrency = 1;
  cfg.max_concurrency = 16;
  cfg.initial_concurrency = initial;
  return cfg;
}

TEST(ThroughputProbe, ClimbsFromBelowToTheKnee) {
  ThroughputProbe probe(probe_config(1));
  for (int i = 0; i < 60; ++i) {
    // Offered load far above capacity: tickets always exhausted.
    probe.on_probe(synthetic_throughput(probe.concurrency(), 4), true);
  }
  EXPECT_EQ(probe.stable_concurrency(), 4u);
  EXPECT_GE(probe.concurrency(), 3u);
  EXPECT_LE(probe.concurrency(), 5u);
}

TEST(ThroughputProbe, WalksDownFromAboveTheKnee) {
  // Over-provisioned start under sustained saturation: the failed-up-probe
  // → down-probe chain must walk the level back to the knee even though
  // tickets are exhausted every single window.
  ThroughputProbe probe(probe_config(16));
  for (int i = 0; i < 120; ++i) {
    probe.on_probe(synthetic_throughput(probe.concurrency(), 4), true);
  }
  EXPECT_EQ(probe.stable_concurrency(), 4u);
}

TEST(ThroughputProbe, HoldsTheKneeOnceFound) {
  ThroughputProbe probe(probe_config(4));
  for (int i = 0; i < 200; ++i) {
    probe.on_probe(synthetic_throughput(probe.concurrency(), 4), true);
    // Probe excursions are one step around the stable point, never a drift.
    EXPECT_GE(probe.concurrency(), 3u);
    EXPECT_LE(probe.concurrency(), 5u);
    EXPECT_EQ(probe.stable_concurrency(), 4u);
  }
  EXPECT_EQ(probe.probes(), 200u);
}

TEST(ThroughputProbe, IdleAndGarbageInputsAreSafe) {
  ThroughputProbe probe(probe_config(2));
  probe.on_probe(std::nan(""), false);
  probe.on_probe(-5.0, true);
  for (int i = 0; i < 20; ++i) probe.on_probe(0.0, false);
  EXPECT_GE(probe.concurrency(), 1u);
  EXPECT_LE(probe.concurrency(), 16u);
  EXPECT_EQ(probe.stable_concurrency(), probe.concurrency());
}

TEST(ThroughputProbe, RespectsConfiguredBounds) {
  AdmissionConfig cfg = probe_config(1);
  cfg.max_concurrency = 3;
  ThroughputProbe probe(cfg);
  for (int i = 0; i < 50; ++i) {
    // Monotonically improving curve: wants to climb forever, capped at 3.
    probe.on_probe(10.0 * static_cast<double>(probe.concurrency()), true);
    EXPECT_LE(probe.concurrency(), 3u);
    EXPECT_GE(probe.concurrency(), 1u);
  }
  EXPECT_EQ(probe.stable_concurrency(), 3u);
}

// ---------------------------------------------------------------------------
// In-process server over a real Unix socket.

TEST(ServiceServer, HelloStatsAndUnknownWorkload) {
  ScratchDir dir;
  ServiceServer server(small_service(dir));
  server.start();

  ServiceClient client(server.config().socket_path);
  const StatsResult st = client.stats();
  EXPECT_EQ(st.completed, 0u);
  EXPECT_EQ(st.admission_level, 2u);

  ProfileRequest q;
  q.workload = "no_such_workload";
  const auto reply = client.profile(q);
  EXPECT_EQ(reply.status, Status::kUnknownWorkload);
  EXPECT_FALSE(reply.message.empty());

  server.request_stop();
  server.wait();
  const ServerStats s = server.stats();
  EXPECT_EQ(s.completed, 0u);
  EXPECT_EQ(s.errors, 0u);
}

TEST(ServiceServer, ProfileBitIdenticalToDirectLab) {
  ScratchDir dir;
  ServiceConfig cfg = small_service(dir);
  ServiceServer server(cfg);
  server.start();

  ProfileRequest q;
  q.workload = "grep_sp";
  q.seed = 42;
  q.sample_n = 8;
  q.want_profile_bytes = 1;
  ServiceClient client(cfg.socket_path);
  const auto reply = client.profile(q);
  ASSERT_EQ(reply.status, Status::kOk) << reply.message;
  server.request_stop();
  server.wait();

  // One-shot reference in a separate cache dir so nothing is shared.
  ScratchDir ref_dir;
  core::LabConfig lc = cfg.lab;
  lc.scale = q.scale;
  lc.seed = q.seed;
  lc.cache_dir = ref_dir.str() + "/cache";
  lc.threads = 1;
  core::WorkloadLab lab(lc);
  const core::LabRun run = lab.run(q.workload, q.input);
  std::ostringstream os;
  run.profile.save(os);
  EXPECT_EQ(reply.result.profile_bytes, os.str());
  EXPECT_EQ(reply.result.units, run.profile.num_units());
  EXPECT_EQ(reply.result.oracle_cpi, run.profile.oracle_cpi());

  // The analysis riding on the profile matches the library path exactly.
  core::PhaseFormationConfig fc;
  fc.threads = 1;
  const core::PhaseModel model = core::form_phases(run.profile, fc);
  EXPECT_EQ(reply.result.phase_count, model.k);
  const auto n =
      std::min<std::size_t>(q.sample_n, run.profile.num_units());
  const core::SamplePlan plan =
      core::simprof_sample(run.profile, model, n, q.seed);
  EXPECT_EQ(reply.result.estimated_cpi, plan.estimated_cpi);
  EXPECT_EQ(reply.result.standard_error, plan.standard_error);
  ASSERT_EQ(reply.result.selected_units.size(), plan.points.size());
  for (std::size_t i = 0; i < plan.points.size(); ++i) {
    EXPECT_EQ(reply.result.selected_units[i],
              run.profile.units[plan.points[i].unit_index].unit_id);
    EXPECT_EQ(reply.result.weights[i], plan.points[i].weight);
  }
}

TEST(ServiceServer, ConcurrentSameConfigClientsShareOneOraclePass) {
  ScratchDir dir;
  ServiceConfig cfg = small_service(dir);
  // All four clients dispatch concurrently: fixed tickets = worker count.
  cfg.fixed_concurrency = true;
  cfg.admission.initial_concurrency = 4;
  cfg.admission.max_concurrency = 4;
  ServiceServer server(cfg);
  server.start();

  const std::uint64_t misses0 = counter_value("lab.cache_misses");
  const std::uint64_t shared0 =
      counter_value("lab.batch_dedup") + counter_value("lab.cache_hits");

  constexpr std::size_t kClients = 4;
  std::vector<ServiceClient::ProfileReply> replies(kClients);
  std::vector<std::thread> threads;
  for (std::size_t i = 0; i < kClients; ++i) {
    threads.emplace_back([&, i] {
      ProfileRequest q;
      q.workload = "grep_sp";
      q.want_profile_bytes = 1;
      ServiceClient client(cfg.socket_path);
      replies[i] = client.profile(q);
    });
  }
  for (auto& t : threads) t.join();
  server.request_stop();
  server.wait();

  for (std::size_t i = 0; i < kClients; ++i) {
    ASSERT_EQ(replies[i].status, Status::kOk) << replies[i].message;
    EXPECT_EQ(replies[i].result.profile_bytes, replies[0].result.profile_bytes)
        << "client " << i << " got a different profile";
  }
  // Exactly one oracle pass ran; every other client shared it, either by
  // waiting on the single-flight (lab.batch_dedup) or by hitting the cache
  // the runner published (lab.cache_hits — run_batch's cache-aware
  // scheduling can probe the cache more than once per request, so ≥).
  EXPECT_EQ(counter_value("lab.cache_misses") - misses0, 1u);
  EXPECT_GE(counter_value("lab.batch_dedup") + counter_value("lab.cache_hits") -
                shared0,
            kClients - 1);
  EXPECT_EQ(server.stats().completed, kClients);
}

TEST(ServiceServer, DistinctFeatureModesShareOraclePassNotAnalysis) {
  ScratchDir dir;
  ServiceConfig cfg = small_service(dir);
  ServiceServer server(cfg);
  server.start();

  const std::uint64_t misses0 = counter_value("lab.cache_misses");

  // Four requests over ONE workload configuration: every feature mode plus
  // a two-phase-estimator variant. The oracle pass must dedup to a single
  // run (the cache key is mode-independent), while each request gets its
  // own analysis — distinct modes must NOT collapse into one result.
  struct Case {
    std::uint8_t features;
    std::uint8_t estimator;
  };
  const Case cases[] = {{0, 0}, {1, 0}, {2, 0}, {2, 1}};
  std::vector<ServiceClient::ProfileReply> replies;
  for (const Case& c : cases) {
    ProfileRequest q;
    q.workload = "grep_sp";
    q.want_profile_bytes = 1;
    q.features = c.features;
    q.estimator = c.estimator;
    ServiceClient client(cfg.socket_path);
    replies.push_back(client.profile(q));
  }

  // An out-of-range selector is a typed bad request, not a crash.
  {
    ProfileRequest q;
    q.workload = "grep_sp";
    q.features = 9;
    ServiceClient client(cfg.socket_path);
    EXPECT_EQ(client.profile(q).status, Status::kBadRequest);
  }
  server.request_stop();
  server.wait();

  for (std::size_t i = 0; i < replies.size(); ++i) {
    ASSERT_EQ(replies[i].status, Status::kOk) << replies[i].message;
    EXPECT_EQ(replies[i].result.features, cases[i].features);
    EXPECT_EQ(replies[i].result.estimator, cases[i].estimator);
    // Same oracle pass → same profile bytes for every mode.
    EXPECT_EQ(replies[i].result.profile_bytes, replies[0].result.profile_bytes);
  }
  EXPECT_EQ(counter_value("lab.cache_misses") - misses0, 1u);

  // Each reply's analysis is bit-identical to the library run under its own
  // mode/estimator — the proof that per-request analysis was not deduped.
  std::istringstream is(replies[0].result.profile_bytes);
  const core::ThreadProfile profile = core::ThreadProfile::load(is);
  for (std::size_t i = 0; i < replies.size(); ++i) {
    core::PhaseFormationConfig fc;
    fc.features = static_cast<features::FeatureMode>(cases[i].features);
    fc.threads = 1;
    const core::PhaseModel model = core::form_phases(profile, fc);
    EXPECT_EQ(replies[i].result.phase_count, model.k) << "case " << i;
    const auto n = std::min<std::size_t>(8, profile.num_units());
    const core::SamplePlan plan =
        cases[i].estimator == 1
            ? core::two_phase_sample(profile, model, n, 42)
            : core::simprof_sample(profile, model, n, 42);
    EXPECT_EQ(replies[i].result.estimated_cpi, plan.estimated_cpi)
        << "case " << i;
    EXPECT_EQ(replies[i].result.standard_error, plan.standard_error)
        << "case " << i;
  }
}

TEST(ServiceServer, OverQuotaIsATypedRejectionNotAHang) {
  ScratchDir dir;
  ServiceConfig cfg = small_service(dir);
  cfg.client_max_inflight = 1;
  ServiceServer server(cfg);
  server.start();

  // A closed loop pushing 3 in-flight against a quota of 1: the overflow
  // must come back as immediate kOverQuota responses, never hang.
  LoadgenConfig lg;
  lg.socket_path = cfg.socket_path;
  lg.clients = 1;
  lg.requests_per_client = 6;
  lg.inflight_per_client = 3;
  const LoadgenReport report = run_loadgen(lg);
  server.request_stop();
  server.wait();

  EXPECT_EQ(report.errors, 0u);
  EXPECT_EQ(report.completed + report.rejected, 6u);
  EXPECT_GT(report.completed, 0u);
  EXPECT_GT(report.rejected, 0u);
  EXPECT_EQ(server.stats().rejected_quota, report.rejected);
}

TEST(ServiceServer, FullQueueIsATypedRejection) {
  ScratchDir dir;
  ServiceConfig cfg = small_service(dir);
  cfg.max_queue = 0;  // nothing fits: every request is rejected typed
  ServiceServer server(cfg);
  server.start();

  ProfileRequest q;
  q.workload = "grep_sp";
  ServiceClient client(cfg.socket_path);
  const auto reply = client.profile(q);
  EXPECT_EQ(reply.status, Status::kQueueFull);
  server.request_stop();
  server.wait();
  EXPECT_EQ(server.stats().rejected_queue_full, 1u);
}

TEST(ServiceServer, StreamingProfileSendsInterimSelections) {
  ScratchDir dir;
  ServiceConfig cfg = small_service(dir);
  cfg.stream_retain_cap = 12;  // per-client memory quota, below the 18 units
  ServiceServer server(cfg);
  server.start();

  ProfileRequest q;
  q.workload = "grep_sp";
  q.stream = 1;
  q.stream_retain = 64;  // asks high; the server clamps to its cap
  q.sample_n = 4;
  std::vector<StreamUpdate> updates;
  ServiceClient client(cfg.socket_path);
  const auto reply = client.profile(
      q, [&](const StreamUpdate& u) { updates.push_back(u); });
  server.request_stop();
  server.wait();

  ASSERT_EQ(reply.status, Status::kOk) << reply.message;
  EXPECT_GE(reply.result.phase_count, 1u);
  ASSERT_FALSE(updates.empty());  // 18 units > 16-unit warmup → ≥1 recluster
  for (const StreamUpdate& u : updates) {
    EXPECT_LE(u.units_retained, 12u) << "retention quota exceeded";
    EXPECT_GE(u.phase_count, 1u);
  }
  EXPECT_EQ(server.stats().stream_updates, updates.size());
}

TEST(ServiceServer, GracefulDrainFinishesInFlightAndRejectsNew) {
  ScratchDir dir;
  ServiceConfig cfg = small_service(dir);
  ServiceServer server(cfg);
  server.start();

  // Raw frames so request B can be sent while A is still in flight.
  const int fd = connect_unix(cfg.socket_path);
  ProfileRequest q;
  q.workload = "grep_sp";
  ASSERT_TRUE(write_frame(
      fd, pack_message(MsgKind::kProfileRequest, 1,
                       [&](BinaryWriter& w) { q.write(w); })));
  // Let A get admitted (a cold oracle pass holds it in flight for a while),
  // then start the drain and submit B.
  std::this_thread::sleep_for(std::chrono::milliseconds(50));
  server.request_stop();
  ASSERT_TRUE(write_frame(
      fd, pack_message(MsgKind::kProfileRequest, 2,
                       [&](BinaryWriter& w) { q.write(w); })));

  Status status_a = Status::kInternalError;
  Status status_b = Status::kInternalError;
  std::string payload;
  int answered = 0;
  while (answered < 2 && read_frame(fd, payload)) {
    std::istringstream is(payload);
    BinaryReader r(is);
    const MessageHeader h = read_header(r);
    if (h.kind != MsgKind::kResponse) continue;
    const auto status = static_cast<Status>(r.u32());
    if (h.request_id == 1) status_a = status;
    if (h.request_id == 2) status_b = status;
    ++answered;
  }
  ::close(fd);
  server.wait();

  EXPECT_EQ(status_a, Status::kOk);  // in-flight work drains to completion
  EXPECT_EQ(status_b, Status::kShuttingDown);
  EXPECT_EQ(server.stats().completed, 1u);
  EXPECT_EQ(server.stats().rejected_shutdown, 1u);
  // The socket file is gone after wait() — a restart can bind cleanly.
  EXPECT_FALSE(std::filesystem::exists(cfg.socket_path));
}

TEST(ServiceServer, MeasureAndSensitivityVerbsWork) {
  ScratchDir dir;
  ServiceConfig cfg = small_service(dir);
  ServiceServer server(cfg);
  server.start();
  ServiceClient client(cfg.socket_path);

  // Profile first so the cache and checkpoint archives exist.
  ProfileRequest pq;
  pq.workload = "grep_sp";
  const auto pr = client.profile(pq);
  ASSERT_EQ(pr.status, Status::kOk) << pr.message;
  ASSERT_GE(pr.result.selected_units.size(), 2u);

  MeasureRequest mq;
  mq.workload = "grep_sp";
  mq.units = {pr.result.selected_units[0], pr.result.selected_units[1]};
  const auto mr = client.measure(mq);
  ASSERT_EQ(mr.status, Status::kOk) << mr.message;
  EXPECT_EQ(mr.result.unit_ids.size(), 2u);

  SensitivityRequest sq;
  sq.workload = "grep_sp";
  sq.references = {"wc_sp"};
  const auto sr = client.sensitivity(sq);
  ASSERT_EQ(sr.status, Status::kOk) << sr.message;
  EXPECT_GE(sr.result.phases, 1u);

  server.request_stop();
  server.wait();
  EXPECT_EQ(server.stats().completed, 3u);
  EXPECT_EQ(server.stats().errors, 0u);
}

}  // namespace
}  // namespace simprof::service
