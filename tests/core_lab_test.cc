// WorkloadLab::run_batch: bit-identity with serial run() calls for any
// thread count, duplicate-key dedup, cache-aware hit/miss scheduling, and
// single-flight serialization of concurrent same-key runs.
#include <gtest/gtest.h>

#include <filesystem>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/lab.h"
#include "obs/obs.h"

namespace simprof::core {
namespace {

LabConfig small_lab(const char* dir) {
  LabConfig cfg;
  cfg.scale = 0.05;
  cfg.graph_scale_override = 12;
  cfg.cache_dir = dir;
  return cfg;
}

class ScratchDir {
 public:
  ScratchDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("simprof_lab_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }
  const char* c_str() const { return path_.c_str(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

std::string profile_bytes(const ThreadProfile& p) {
  std::ostringstream os(std::ios::binary);
  p.save(os);
  return os.str();
}

std::uint64_t counter_value(const char* name) {
  return obs::metrics().counter(name).value();
}

TEST(LabBatch, EmptyBatchIsANoOp) {
  ScratchDir dir;
  WorkloadLab lab(small_lab(dir.c_str()));
  EXPECT_TRUE(lab.run_batch({}).empty());
}

TEST(LabBatch, MatchesSerialRunsBitIdentical) {
  // Serial reference runs in their own cache dir.
  ScratchDir serial_dir;
  WorkloadLab serial(small_lab(serial_dir.c_str()));
  const std::vector<BatchItem> items = {
      {"grep_sp", "Google", {}},
      {"wc_sp", "Google", {}},
      {"grep_sp", "Google", std::uint64_t{77}},  // distinct seed → new key
  };
  std::vector<std::string> expect;
  expect.push_back(profile_bytes(serial.run("grep_sp").profile));
  expect.push_back(profile_bytes(serial.run("wc_sp").profile));
  {
    LabConfig seeded = small_lab(serial_dir.c_str());
    seeded.seed = 77;
    expect.push_back(
        profile_bytes(WorkloadLab(seeded).run("grep_sp").profile));
  }

  for (std::size_t threads : {1u, 4u}) {
    ScratchDir dir;
    LabConfig cfg = small_lab(dir.c_str());
    cfg.threads = threads;
    WorkloadLab lab(cfg);
    const auto runs = lab.run_batch(items);
    ASSERT_EQ(runs.size(), items.size());
    for (std::size_t i = 0; i < runs.size(); ++i) {
      EXPECT_FALSE(runs[i].from_cache) << i;
      EXPECT_EQ(profile_bytes(runs[i].profile), expect[i])
          << "item " << i << " threads " << threads;
    }
  }
}

TEST(LabBatch, DuplicateItemsRunOnceAndCountDedup) {
  ScratchDir dir;
  LabConfig cfg = small_lab(dir.c_str());
  cfg.threads = 4;
  WorkloadLab lab(cfg);
  const std::uint64_t dedup0 = counter_value("lab.batch_dedup");
  const std::uint64_t misses0 = counter_value("lab.cache_misses");
  const std::vector<BatchItem> items = {{"grep_sp", "Google", {}},
                                        {"grep_sp", "Google", {}},
                                        {"grep_sp", "Google", {}}};
  const auto runs = lab.run_batch(items);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(counter_value("lab.batch_dedup") - dedup0, 2u);
  EXPECT_EQ(counter_value("lab.cache_misses") - misses0, 1u);
  const std::string bytes = profile_bytes(runs[0].profile);
  EXPECT_EQ(profile_bytes(runs[1].profile), bytes);
  EXPECT_EQ(profile_bytes(runs[2].profile), bytes);
}

TEST(LabBatch, MixedHitsAndMissesKeepItemOrder) {
  ScratchDir dir;
  LabConfig cfg = small_lab(dir.c_str());
  cfg.threads = 2;
  WorkloadLab lab(cfg);
  const auto warm = lab.run("grep_sp");  // populate one key
  const auto runs = lab.run_batch({{"wc_sp", "Google", {}},
                                   {"grep_sp", "Google", {}}});
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_FALSE(runs[0].from_cache);
  EXPECT_TRUE(runs[1].from_cache);
  EXPECT_EQ(profile_bytes(runs[1].profile), profile_bytes(warm.profile));
}

TEST(LabSingleFlight, ConcurrentSameKeyRunsOracleOnce) {
  ScratchDir dir;
  WorkloadLab lab(small_lab(dir.c_str()));
  const std::uint64_t misses0 = counter_value("lab.cache_misses");
  const std::uint64_t hits0 = counter_value("lab.cache_hits");
  const std::uint64_t dedup0 = counter_value("lab.batch_dedup");

  constexpr std::size_t kCallers = 4;
  std::vector<std::string> bytes(kCallers);
  std::vector<std::thread> callers;
  for (std::size_t i = 0; i < kCallers; ++i) {
    callers.emplace_back([&, i] {
      bytes[i] = profile_bytes(lab.run("grep_sp").profile);
    });
  }
  for (auto& t : callers) t.join();

  // Exactly one oracle pass; every other caller decoded the published
  // profile (a cache hit), either on the unlocked fast path or as a
  // single-flight dedup inside the key lock (which counts both).
  EXPECT_EQ(counter_value("lab.cache_misses") - misses0, 1u);
  EXPECT_EQ(counter_value("lab.cache_hits") - hits0, kCallers - 1);
  EXPECT_LE(counter_value("lab.batch_dedup") - dedup0, kCallers - 1);
  for (std::size_t i = 1; i < kCallers; ++i) {
    EXPECT_EQ(bytes[i], bytes[0]) << "caller " << i;
  }
}

}  // namespace
}  // namespace simprof::core
