// WorkloadLab::run_batch: bit-identity with serial run() calls for any
// thread count, duplicate-key dedup, cache-aware hit/miss scheduling, and
// single-flight serialization of concurrent same-key runs. Plus
// measure_units: checkpoint-restored measurement of selected units is
// bit-identical to the oracle pass, with and without archives, at any
// worker-thread count, and falls back to exact re-execution on corruption.
#include <gtest/gtest.h>

#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <thread>
#include <vector>

#include "core/lab.h"
#include "obs/obs.h"
#include "support/serialize.h"

namespace simprof::core {
namespace {

LabConfig small_lab(const char* dir) {
  LabConfig cfg;
  cfg.scale = 0.05;
  cfg.graph_scale_override = 12;
  cfg.cache_dir = dir;
  return cfg;
}

class ScratchDir {
 public:
  ScratchDir() {
    path_ = std::filesystem::temp_directory_path() /
            ("simprof_lab_test_" + std::to_string(::getpid()) + "_" +
             std::to_string(counter_++));
  }
  ~ScratchDir() { std::filesystem::remove_all(path_); }
  const char* c_str() const { return path_.c_str(); }

 private:
  static inline int counter_ = 0;
  std::filesystem::path path_;
};

std::string profile_bytes(const ThreadProfile& p) {
  std::ostringstream os(std::ios::binary);
  p.save(os);
  return os.str();
}

std::uint64_t counter_value(const char* name) {
  return obs::metrics().counter(name).value();
}

TEST(LabBatch, EmptyBatchIsANoOp) {
  ScratchDir dir;
  WorkloadLab lab(small_lab(dir.c_str()));
  EXPECT_TRUE(lab.run_batch({}).empty());
}

TEST(LabBatch, MatchesSerialRunsBitIdentical) {
  // Serial reference runs in their own cache dir.
  ScratchDir serial_dir;
  WorkloadLab serial(small_lab(serial_dir.c_str()));
  const std::vector<BatchItem> items = {
      {"grep_sp", "Google", {}},
      {"wc_sp", "Google", {}},
      {"grep_sp", "Google", std::uint64_t{77}},  // distinct seed → new key
  };
  std::vector<std::string> expect;
  expect.push_back(profile_bytes(serial.run("grep_sp").profile));
  expect.push_back(profile_bytes(serial.run("wc_sp").profile));
  {
    LabConfig seeded = small_lab(serial_dir.c_str());
    seeded.seed = 77;
    expect.push_back(
        profile_bytes(WorkloadLab(seeded).run("grep_sp").profile));
  }

  for (std::size_t threads : {1u, 4u}) {
    ScratchDir dir;
    LabConfig cfg = small_lab(dir.c_str());
    cfg.threads = threads;
    WorkloadLab lab(cfg);
    const auto runs = lab.run_batch(items);
    ASSERT_EQ(runs.size(), items.size());
    for (std::size_t i = 0; i < runs.size(); ++i) {
      EXPECT_FALSE(runs[i].from_cache) << i;
      EXPECT_EQ(profile_bytes(runs[i].profile), expect[i])
          << "item " << i << " threads " << threads;
    }
  }
}

TEST(LabBatch, DuplicateItemsRunOnceAndCountDedup) {
  ScratchDir dir;
  LabConfig cfg = small_lab(dir.c_str());
  cfg.threads = 4;
  WorkloadLab lab(cfg);
  const std::uint64_t dedup0 = counter_value("lab.batch_dedup");
  const std::uint64_t misses0 = counter_value("lab.cache_misses");
  const std::vector<BatchItem> items = {{"grep_sp", "Google", {}},
                                        {"grep_sp", "Google", {}},
                                        {"grep_sp", "Google", {}}};
  const auto runs = lab.run_batch(items);
  ASSERT_EQ(runs.size(), 3u);
  EXPECT_EQ(counter_value("lab.batch_dedup") - dedup0, 2u);
  EXPECT_EQ(counter_value("lab.cache_misses") - misses0, 1u);
  const std::string bytes = profile_bytes(runs[0].profile);
  EXPECT_EQ(profile_bytes(runs[1].profile), bytes);
  EXPECT_EQ(profile_bytes(runs[2].profile), bytes);
}

TEST(LabBatch, MixedHitsAndMissesKeepItemOrder) {
  ScratchDir dir;
  LabConfig cfg = small_lab(dir.c_str());
  cfg.threads = 2;
  WorkloadLab lab(cfg);
  const auto warm = lab.run("grep_sp");  // populate one key
  const auto runs = lab.run_batch({{"wc_sp", "Google", {}},
                                   {"grep_sp", "Google", {}}});
  ASSERT_EQ(runs.size(), 2u);
  EXPECT_FALSE(runs[0].from_cache);
  EXPECT_TRUE(runs[1].from_cache);
  EXPECT_EQ(profile_bytes(runs[1].profile), profile_bytes(warm.profile));
}

TEST(LabCache, StaleSchemaFileIsACountedMissNeverAWrongNumber) {
  ScratchDir dir;
  WorkloadLab warm_lab(small_lab(dir.c_str()));
  const LabRun warm = warm_lab.run("grep_sp");
  ASSERT_FALSE(warm.cache_path.empty());
  const std::string golden = profile_bytes(warm.profile);

  // Overwrite the cache file with an otherwise-plausible archive written
  // under an older schema: good magic, pre-MAV version, empty body. The
  // decoder must reject it on the version field, not misparse the body.
  {
    std::ofstream out(warm.cache_path, std::ios::binary | std::ios::trunc);
    BinaryWriter w(out);
    w.u32(0x53505246);  // "SPRF"
    w.u32(3);           // stale pre-MAV profile version
    w.u64(0);           // no methods
    w.u64(0);           // no units
  }

  const std::uint64_t corrupt0 = counter_value("lab.cache_corrupt");
  const std::uint64_t misses0 = counter_value("lab.cache_misses");
  WorkloadLab lab(small_lab(dir.c_str()));
  const LabRun rerun = lab.run("grep_sp");
  // The stale file is a logged miss — never served as a hit, never a wrong
  // number: the oracle pass reruns and reproduces the original bytes.
  EXPECT_FALSE(rerun.from_cache);
  EXPECT_EQ(counter_value("lab.cache_corrupt") - corrupt0, 1u);
  EXPECT_EQ(counter_value("lab.cache_misses") - misses0, 1u);
  EXPECT_EQ(profile_bytes(rerun.profile), golden);

  // The regenerated file is a current-schema hit on the next lab.
  WorkloadLab again(small_lab(dir.c_str()));
  const LabRun hit = again.run("grep_sp");
  EXPECT_TRUE(hit.from_cache);
  EXPECT_EQ(profile_bytes(hit.profile), golden);
}

TEST(LabSingleFlight, ConcurrentSameKeyRunsOracleOnce) {
  ScratchDir dir;
  WorkloadLab lab(small_lab(dir.c_str()));
  const std::uint64_t misses0 = counter_value("lab.cache_misses");
  const std::uint64_t hits0 = counter_value("lab.cache_hits");
  const std::uint64_t dedup0 = counter_value("lab.batch_dedup");

  constexpr std::size_t kCallers = 4;
  std::vector<std::string> bytes(kCallers);
  std::vector<std::thread> callers;
  for (std::size_t i = 0; i < kCallers; ++i) {
    callers.emplace_back([&, i] {
      bytes[i] = profile_bytes(lab.run("grep_sp").profile);
    });
  }
  for (auto& t : callers) t.join();

  // Exactly one oracle pass; every other caller decoded the published
  // profile (a cache hit), either on the unlocked fast path or as a
  // single-flight dedup inside the key lock (which counts both).
  EXPECT_EQ(counter_value("lab.cache_misses") - misses0, 1u);
  EXPECT_EQ(counter_value("lab.cache_hits") - hits0, kCallers - 1);
  EXPECT_LE(counter_value("lab.batch_dedup") - dedup0, kCallers - 1);
  for (std::size_t i = 1; i < kCallers; ++i) {
    EXPECT_EQ(bytes[i], bytes[0]) << "caller " << i;
  }
}

bool same_counters(const hw::PmuCounters& a, const hw::PmuCounters& b) {
  return a.instructions == b.instructions && a.cycles == b.cycles &&
         a.line_touches == b.line_touches && a.l1_misses == b.l1_misses &&
         a.l2_misses == b.l2_misses && a.llc_misses == b.llc_misses &&
         a.migrations == b.migrations;
}

/// Every measured record must equal the oracle profile's record for the same
/// unit id, bitwise: counters, methods, and frame counts.
void expect_records_match_oracle(const std::vector<UnitRecord>& measured,
                                 const ThreadProfile& oracle) {
  for (const auto& m : measured) {
    ASSERT_LT(m.unit_id, oracle.units.size());
    const UnitRecord& o = oracle.units[m.unit_id];
    ASSERT_EQ(o.unit_id, m.unit_id);
    EXPECT_TRUE(same_counters(m.counters, o.counters))
        << "unit " << m.unit_id << " counters diverged";
    EXPECT_EQ(m.methods, o.methods) << "unit " << m.unit_id;
    EXPECT_EQ(m.counts, o.counts) << "unit " << m.unit_id;
  }
}

TEST(LabMeasure, CheckpointedUnitsMatchOracleAtAnyThreadCount) {
  for (std::size_t threads : {1u, 4u}) {
    ScratchDir dir;
    LabConfig cfg = small_lab(dir.c_str());
    cfg.threads = threads;
    cfg.checkpoint_stride = 2;
    WorkloadLab lab(cfg);

    // Oracle pass via the batch path (exercises the configured pool width)
    // records checkpoints as a side effect.
    const auto runs = lab.run_batch({{"grep_sp", "Google", {}}});
    ASSERT_EQ(runs.size(), 1u);
    const ThreadProfile& oracle = runs[0].profile;
    ASSERT_GE(oracle.units.size(), 4u);

    const std::vector<std::uint64_t> targets = {
        1, oracle.units.size() / 2, oracle.units.size() - 1};
    const auto m = lab.measure_units("grep_sp", "Google", targets);
    ASSERT_EQ(m.records.size(), targets.size()) << "threads " << threads;
    EXPECT_TRUE(m.used_checkpoints) << "threads " << threads;
    EXPECT_FALSE(m.fallback) << "threads " << threads;
    EXPECT_GT(m.checkpoints_restored, 0u);
    EXPECT_GT(m.fast_forwarded_instrs, 0u);
    expect_records_match_oracle(m.records, oracle);
  }
}

TEST(LabMeasure, NoArchivesStillMeasuresExactlyFromColdStart) {
  ScratchDir dir;
  LabConfig cfg = small_lab(dir.c_str());
  cfg.checkpoint_stride = 0;  // recording disabled → no archives on disk
  WorkloadLab lab(cfg);
  const ThreadProfile oracle = lab.run("grep_sp").profile;
  ASSERT_GE(oracle.units.size(), 2u);

  const auto m =
      lab.measure_units("grep_sp", "Google", {0, oracle.units.size() - 1});
  EXPECT_FALSE(m.used_checkpoints);
  EXPECT_FALSE(m.fallback);  // no archives is a cold plan, not a failure
  ASSERT_EQ(m.records.size(), 2u);
  expect_records_match_oracle(m.records, oracle);
}

TEST(LabMeasure, CorruptArchivesFallBackToExactReexecution) {
  ScratchDir dir;
  LabConfig cfg = small_lab(dir.c_str());
  cfg.checkpoint_stride = 2;
  WorkloadLab lab(cfg);
  const auto run = lab.run("grep_sp");
  const ThreadProfile& oracle = run.profile;

  // Truncate every published archive: any restore attempt must be rejected
  // by the format's typed checks, never half-applied.
  const std::filesystem::path ckpt_dir =
      lab.checkpoint_dir_for("grep_sp", "Google", cfg.seed);
  std::size_t corrupted = 0;
  for (const auto& e : std::filesystem::directory_iterator(ckpt_dir)) {
    std::string bytes;
    {
      std::ifstream in(e.path(), std::ios::binary);
      std::ostringstream os;
      os << in.rdbuf();
      bytes = os.str();
    }
    std::ofstream out(e.path(), std::ios::binary | std::ios::trunc);
    out.write(bytes.data(),
              static_cast<std::streamsize>(bytes.size() / 2));
    ++corrupted;
  }
  ASSERT_GT(corrupted, 0u);

  const std::uint64_t fallbacks0 = counter_value("ckpt.fallback");
  const auto m = lab.measure_units("grep_sp", "Google", {2});
  EXPECT_TRUE(m.fallback);
  EXPECT_EQ(counter_value("ckpt.fallback") - fallbacks0, 1u);
  ASSERT_EQ(m.records.size(), 1u);
  expect_records_match_oracle(m.records, oracle);
}

TEST(CheckpointPrune, RemovesOnlyStaleSchemaDirs) {
  std::ostringstream sink;
  obs::set_log_sink(&sink);
  ScratchDir dir;
  namespace fs = std::filesystem;
  const fs::path root(dir.c_str());
  const std::string current =
      "grep_sp-Google-bbbb-v" + std::to_string(kLabCacheSchema);
  fs::create_directories(root / "grep_sp-Google-aaaa-v4");  // stale schema
  fs::create_directories(root / current);                   // current schema
  fs::create_directories(root / "notes");                   // no -v suffix
  fs::create_directories(root / "thing-vx4");               // non-digit suffix
  { std::ofstream(root / "file-v4") << "not a dir"; }       // regular file

  const std::uint64_t pruned0 = counter_value("ckpt.pruned");
  EXPECT_EQ(prune_stale_checkpoint_dirs(root.string()), 1u);
  EXPECT_FALSE(fs::exists(root / "grep_sp-Google-aaaa-v4"));
  EXPECT_TRUE(fs::exists(root / current));
  EXPECT_TRUE(fs::exists(root / "notes"));
  EXPECT_TRUE(fs::exists(root / "thing-vx4"));
  EXPECT_TRUE(fs::exists(root / "file-v4"));
  EXPECT_EQ(counter_value("ckpt.pruned") - pruned0, 1u);
  // The sweep announces what it removed.
  EXPECT_NE(sink.str().find("pruned 1 stale checkpoint dir"),
            std::string::npos);

  // A second sweep and a missing root are clean no-ops.
  EXPECT_EQ(prune_stale_checkpoint_dirs(root.string()), 0u);
  EXPECT_EQ(prune_stale_checkpoint_dirs((root / "missing").string()), 0u);
  EXPECT_EQ(counter_value("ckpt.pruned") - pruned0, 1u);
  obs::set_log_sink(nullptr);
}

}  // namespace
}  // namespace simprof::core
