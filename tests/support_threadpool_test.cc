// Unit tests for support::ThreadPool and its deterministic parallel_for:
// chunk decomposition, empty ranges, grain > n, exception propagation,
// nested-call inlining, and bitwise-reproducible ordered reductions.
#include <gtest/gtest.h>

#include <atomic>
#include <cmath>
#include <mutex>
#include <set>
#include <stdexcept>
#include <thread>
#include <vector>

#include "support/thread_pool.h"

namespace simprof::support {
namespace {

TEST(ThreadPool, CoversRangeExactlyOnce) {
  ThreadPool pool(3);
  const std::size_t n = 1000;
  std::vector<std::atomic<int>> hits(n);
  pool.parallel_for(0, n, 7, [&](std::size_t, std::size_t b, std::size_t e) {
    for (std::size_t i = b; i < e; ++i) hits[i].fetch_add(1);
  });
  for (std::size_t i = 0; i < n; ++i) EXPECT_EQ(hits[i].load(), 1) << i;
}

TEST(ThreadPool, ChunkDecompositionIndependentOfThreadCount) {
  // The (chunk_index, begin, end) triples must depend only on the range and
  // grain — this is what makes ordered partial reductions deterministic.
  auto decompose = [](ThreadPool& pool, std::size_t cap) {
    std::mutex mu;
    std::set<std::tuple<std::size_t, std::size_t, std::size_t>> chunks;
    pool.parallel_for(
        5, 103, 10,
        [&](std::size_t c, std::size_t b, std::size_t e) {
          std::lock_guard<std::mutex> lock(mu);
          chunks.insert({c, b, e});
        },
        cap);
    return chunks;
  };
  ThreadPool pool(4);
  const auto serial = decompose(pool, 1);
  EXPECT_EQ(serial.size(), 10u);  // ceil(98 / 10)
  EXPECT_EQ(decompose(pool, 2), serial);
  EXPECT_EQ(decompose(pool, 0), serial);
  // Last chunk is short: [95, 103).
  EXPECT_TRUE(serial.count({9u, 95u, 103u}));
}

TEST(ThreadPool, EmptyRangeNeverInvokes) {
  ThreadPool pool(2);
  bool invoked = false;
  pool.parallel_for(10, 10, 4,
                    [&](std::size_t, std::size_t, std::size_t) {
                      invoked = true;
                    });
  pool.parallel_for(10, 3, 4,  // end < begin is an empty range too
                    [&](std::size_t, std::size_t, std::size_t) {
                      invoked = true;
                    });
  EXPECT_FALSE(invoked);
}

TEST(ThreadPool, GrainLargerThanRangeIsOneChunk) {
  ThreadPool pool(2);
  std::vector<std::tuple<std::size_t, std::size_t, std::size_t>> calls;
  pool.parallel_for(2, 9, 1000,
                    [&](std::size_t c, std::size_t b, std::size_t e) {
                      calls.push_back({c, b, e});
                    });
  ASSERT_EQ(calls.size(), 1u);
  EXPECT_EQ(calls[0], std::make_tuple(0u, 2u, 9u));
}

TEST(ThreadPool, PropagatesFirstException) {
  ThreadPool pool(3);
  EXPECT_THROW(
      pool.parallel_for(0, 100, 5,
                        [&](std::size_t c, std::size_t, std::size_t) {
                          if (c == 7) throw std::runtime_error("chunk 7");
                        }),
      std::runtime_error);
  // The pool survives a failed job and runs the next one.
  std::atomic<std::size_t> count{0};
  pool.parallel_for(0, 100, 5, [&](std::size_t, std::size_t b, std::size_t e) {
    count.fetch_add(e - b);
  });
  EXPECT_EQ(count.load(), 100u);
}

TEST(ThreadPool, ExceptionPropagatesFromSerialPath) {
  ThreadPool pool(2);
  EXPECT_THROW(pool.parallel_for(
                   0, 10, 100,  // single chunk → inline path
                   [&](std::size_t, std::size_t, std::size_t) {
                     throw std::runtime_error("inline");
                   }),
               std::runtime_error);
}

TEST(ThreadPool, NestedParallelForRunsInline) {
  ThreadPool pool(3);
  std::atomic<std::size_t> inner_total{0};
  pool.parallel_for(0, 4, 1, [&](std::size_t, std::size_t, std::size_t) {
    // Nested call on the same pool must not deadlock; it runs serially.
    pool.parallel_for(0, 50, 10,
                      [&](std::size_t, std::size_t b, std::size_t e) {
                        inner_total.fetch_add(e - b);
                      });
  });
  EXPECT_EQ(inner_total.load(), 200u);
}

TEST(ThreadPool, ConcurrentTopLevelCallersQueueInsteadOfFaulting) {
  // The service daemon's request workers all share the process-wide pool;
  // top-level parallel_for calls arriving while a job is in flight must
  // queue behind it (previously a contract violation) and each still cover
  // its own range exactly once.
  ThreadPool pool(2);
  constexpr std::size_t kCallers = 6;
  constexpr std::size_t kN = 2000;
  std::vector<std::atomic<int>> hits(kCallers * kN);
  std::vector<std::thread> callers;
  callers.reserve(kCallers);
  for (std::size_t c = 0; c < kCallers; ++c) {
    callers.emplace_back([&, c] {
      pool.parallel_for(0, kN, 37,
                        [&](std::size_t, std::size_t b, std::size_t e) {
                          for (std::size_t i = b; i < e; ++i) {
                            hits[c * kN + i].fetch_add(1);
                          }
                        });
    });
  }
  for (auto& t : callers) t.join();
  for (std::size_t i = 0; i < hits.size(); ++i) {
    ASSERT_EQ(hits[i].load(), 1) << i;
  }
}

TEST(ThreadPool, QueuedCallerSurvivesPredecessorException) {
  // A throwing job must not wedge the queue: the waiter behind it still
  // runs to completion.
  ThreadPool pool(2);
  std::atomic<std::size_t> covered{0};
  std::thread thrower([&] {
    try {
      pool.parallel_for(0, 400, 3,
                        [&](std::size_t c, std::size_t, std::size_t) {
                          if (c == 5) throw std::runtime_error("boom");
                        });
    } catch (const std::runtime_error&) {
    }
  });
  std::thread waiter([&] {
    pool.parallel_for(0, 400, 3,
                      [&](std::size_t, std::size_t b, std::size_t e) {
                        covered.fetch_add(e - b);
                      });
  });
  thrower.join();
  waiter.join();
  EXPECT_EQ(covered.load(), 400u);
}

TEST(ThreadPool, OrderedReductionBitIdenticalAcrossThreadCounts) {
  // Sum of irrational-ish terms: per-chunk partials merged in chunk order
  // must produce the same bits no matter how many workers participated.
  ThreadPool pool(4);
  auto reduce = [&](std::size_t cap) {
    const std::size_t n = 4096, grain = 64;
    std::vector<double> partial((n + grain - 1) / grain, 0.0);
    pool.parallel_for(
        0, n, grain,
        [&](std::size_t c, std::size_t b, std::size_t e) {
          double acc = 0.0;
          for (std::size_t i = b; i < e; ++i) {
            acc += std::sqrt(static_cast<double>(i) + 0.1);
          }
          partial[c] = acc;
        },
        cap);
    double total = 0.0;
    for (double p : partial) total += p;
    return total;
  };
  const double serial = reduce(1);
  EXPECT_EQ(serial, reduce(2));
  EXPECT_EQ(serial, reduce(3));
  EXPECT_EQ(serial, reduce(0));
}

TEST(ThreadPoolGlobals, ResolveThreadsUsesDefault) {
  const std::size_t saved = default_thread_count();
  set_default_thread_count(3);
  EXPECT_EQ(resolve_threads(0), 3u);
  EXPECT_EQ(resolve_threads(5), 5u);
  set_default_thread_count(0);  // back to hardware_concurrency
  EXPECT_GE(default_thread_count(), 1u);
  (void)saved;
}

}  // namespace
}  // namespace simprof::support
