// Unit tests for the support layer: contracts, deterministic RNG, Zipf
// sampling, string interning, binary serialization and table formatting.
#include <gtest/gtest.h>

#include <cmath>
#include <cstdint>
#include <sstream>
#include <type_traits>

#include "support/assert.h"
#include "support/interner.h"
#include "support/rng.h"
#include "support/serialize.h"
#include "support/table.h"
#include "support/zipf.h"

namespace simprof {
namespace {

TEST(Assert, ExpectsThrowsContractViolationWithContext) {
  try {
    SIMPROF_EXPECTS(1 == 2, "math broke");
    FAIL() << "should have thrown";
  } catch (const ContractViolation& e) {
    EXPECT_NE(std::string(e.what()).find("math broke"), std::string::npos);
    EXPECT_NE(std::string(e.what()).find("1 == 2"), std::string::npos);
  }
}

TEST(Assert, PassingConditionsDoNotThrow) {
  EXPECT_NO_THROW(SIMPROF_EXPECTS(true, ""));
  EXPECT_NO_THROW(SIMPROF_ENSURES(2 + 2 == 4, ""));
  EXPECT_NO_THROW(SIMPROF_ASSERT(true, ""));
}

TEST(Rng, DeterministicForSameSeed) {
  Rng a(123), b(123);
  for (int i = 0; i < 100; ++i) EXPECT_EQ(a.next_u64(), b.next_u64());
}

TEST(Rng, DifferentSeedsDiverge) {
  Rng a(1), b(2);
  int same = 0;
  for (int i = 0; i < 64; ++i) same += (a.next_u64() == b.next_u64()) ? 1 : 0;
  EXPECT_LT(same, 2);
}

TEST(Rng, NextBelowStaysInBounds) {
  Rng rng(99);
  for (std::uint64_t bound : {1ULL, 2ULL, 3ULL, 7ULL, 1000ULL, 1ULL << 40}) {
    for (int i = 0; i < 200; ++i) EXPECT_LT(rng.next_below(bound), bound);
  }
}

TEST(Rng, NextBelowRejectsZeroBound) {
  Rng rng(1);
  EXPECT_THROW(rng.next_below(0), ContractViolation);
}

TEST(Rng, NextDoubleInHalfOpenUnitInterval) {
  Rng rng(5);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
  }
}

TEST(Rng, UniformMeanIsNearHalf) {
  Rng rng(6);
  double acc = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) acc += rng.next_double();
  EXPECT_NEAR(acc / kN, 0.5, 0.02);
}

TEST(Rng, GaussianMomentsAreStandard) {
  Rng rng(7);
  double sum = 0.0, sum2 = 0.0;
  constexpr int kN = 20000;
  for (int i = 0; i < kN; ++i) {
    const double g = rng.next_gaussian();
    sum += g;
    sum2 += g * g;
  }
  EXPECT_NEAR(sum / kN, 0.0, 0.05);
  EXPECT_NEAR(sum2 / kN, 1.0, 0.05);
}

TEST(Rng, SplitProducesIndependentStream) {
  Rng parent(11);
  Rng child = parent.split();
  int same = 0;
  for (int i = 0; i < 64; ++i) {
    same += (parent.next_u64() == child.next_u64()) ? 1 : 0;
  }
  EXPECT_LT(same, 2);
}

TEST(Rng, ShuffleIsAPermutation) {
  std::vector<int> v{1, 2, 3, 4, 5, 6, 7, 8};
  Rng rng(3);
  shuffle(v, rng);
  std::vector<int> sorted = v;
  std::sort(sorted.begin(), sorted.end());
  EXPECT_EQ(sorted, (std::vector<int>{1, 2, 3, 4, 5, 6, 7, 8}));
}

TEST(Zipf, RankZeroIsMostFrequent) {
  ZipfSampler z(1000, 1.0);
  Rng rng(1);
  std::vector<int> counts(1000, 0);
  for (int i = 0; i < 50000; ++i) ++counts[z.sample(rng)];
  EXPECT_GT(counts[0], counts[10]);
  EXPECT_GT(counts[0], counts[100]);
}

TEST(Zipf, EmpiricalMatchesTheoreticalProbability) {
  ZipfSampler z(100, 1.2);
  Rng rng(2);
  constexpr int kN = 200000;
  std::vector<int> counts(100, 0);
  for (int i = 0; i < kN; ++i) ++counts[z.sample(rng)];
  for (std::size_t rank : {0UL, 1UL, 5UL, 20UL}) {
    const double expected = z.probability(rank);
    const double got = static_cast<double>(counts[rank]) / kN;
    EXPECT_NEAR(got, expected, 0.15 * expected + 0.002) << "rank " << rank;
  }
}

TEST(Zipf, ZeroExponentIsUniform) {
  ZipfSampler z(10, 0.0);
  for (std::size_t r = 0; r < 10; ++r) {
    EXPECT_NEAR(z.probability(r), 0.1, 1e-12);
  }
}

TEST(Zipf, RejectsEmptyVocabulary) {
  EXPECT_THROW(ZipfSampler(0, 1.0), ContractViolation);
}

TEST(Interner, AssignsDenseStableIds) {
  StringInterner in;
  const auto a = in.intern("alpha");
  const auto b = in.intern("beta");
  EXPECT_EQ(a, 0u);
  EXPECT_EQ(b, 1u);
  EXPECT_EQ(in.intern("alpha"), a);
  EXPECT_EQ(in.size(), 2u);
  EXPECT_EQ(in.name(a), "alpha");
  EXPECT_EQ(in.name(b), "beta");
}

TEST(Interner, FindDoesNotIntern) {
  StringInterner in;
  EXPECT_FALSE(in.find("missing").has_value());
  EXPECT_EQ(in.size(), 0u);
  in.intern("x");
  EXPECT_TRUE(in.find("x").has_value());
}

TEST(Interner, UnknownIdThrows) {
  StringInterner in;
  EXPECT_THROW(in.name(0), ContractViolation);
}

TEST(Serialize, RoundTripsScalarsAndContainers) {
  std::stringstream buf;
  {
    BinaryWriter w(buf);
    w.u8(7);
    w.u32(0xdeadbeef);
    w.u64(1ULL << 60);
    w.f64(3.14159);
    w.str("hello world");
    w.vec_u32({1, 2, 3});
    w.vec_u64({});
    w.vec_f64({-1.5, 2.5});
  }
  BinaryReader r(buf);
  EXPECT_EQ(r.u8(), 7);
  EXPECT_EQ(r.u32(), 0xdeadbeefu);
  EXPECT_EQ(r.u64(), 1ULL << 60);
  EXPECT_DOUBLE_EQ(r.f64(), 3.14159);
  EXPECT_EQ(r.str(), "hello world");
  EXPECT_EQ(r.vec_u32(), (std::vector<std::uint32_t>{1, 2, 3}));
  EXPECT_TRUE(r.vec_u64().empty());
  EXPECT_EQ(r.vec_f64(), (std::vector<double>{-1.5, 2.5}));
}

TEST(Serialize, TruncatedReadThrows) {
  std::stringstream buf;
  {
    BinaryWriter w(buf);
    w.u32(1);
  }
  BinaryReader r(buf);
  EXPECT_THROW(r.u64(), ContractViolation);
}

TEST(Serialize, TypedErrorDerivesContractViolation) {
  // New catch sites distinguish bad input; old EXPECT_THROW sites keep
  // working because SerializeError is-a ContractViolation.
  static_assert(std::is_base_of_v<ContractViolation, SerializeError>);
  std::stringstream buf;
  BinaryReader r(buf);
  EXPECT_THROW(r.u8(), SerializeError);
}

TEST(Serialize, VectorPrefixBoundedByRemainingBytes) {
  // Regression: a corrupt u64 count used to feed reserve() unchecked, so a
  // hostile archive could demand a multi-gigabyte allocation up front.
  std::stringstream buf;
  {
    BinaryWriter w(buf);
    w.u64(1ULL << 40);  // claims ~10^12 u32 elements...
    w.u32(7);           // ...backed by four bytes
  }
  BinaryReader r(buf);
  EXPECT_THROW(r.vec_u32(), SerializeError);
}

TEST(Serialize, StringPrefixBoundedByRemainingBytes) {
  std::stringstream buf;
  {
    BinaryWriter w(buf);
    w.u64(1000);
    w.u8('x');
  }
  BinaryReader r(buf);
  EXPECT_THROW(r.str(), SerializeError);
}

TEST(Serialize, RemainingTracksConsumption) {
  std::stringstream buf;
  {
    BinaryWriter w(buf);
    w.u64(1);
    w.u32(2);
  }
  BinaryReader r(buf);
  EXPECT_EQ(r.remaining(), 12u);
  r.u64();
  EXPECT_EQ(r.remaining(), 4u);
  r.u32();
  EXPECT_EQ(r.remaining(), 0u);
}

TEST(Table, AlignedAndCsvOutput) {
  Table t({"name", "value"});
  t.row({"cpi", Table::num(1.2345, 2)});
  t.row({"err", Table::pct(0.016)});
  std::ostringstream os;
  t.print(os);
  const std::string s = os.str();
  EXPECT_NE(s.find("cpi"), std::string::npos);
  EXPECT_NE(s.find("1.23"), std::string::npos);
  EXPECT_NE(s.find("1.6%"), std::string::npos);
  EXPECT_NE(s.find("-- csv --"), std::string::npos);
  EXPECT_NE(s.find("cpi,1.23"), std::string::npos);
}

TEST(Table, RowArityMismatchThrows) {
  Table t({"a", "b"});
  EXPECT_THROW(t.row({"only one"}), ContractViolation);
}

}  // namespace
}  // namespace simprof
