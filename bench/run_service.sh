#!/bin/sh
# Refresh BENCH_service.json — the daemon's measured saturation curve.
#
# Runs perf_service, the custom sweep driver for the service layer:
#
#   fixed_sweep        QPS per hand-pinned admission level 1..max — the
#                      ground-truth saturation curve; its argmax is the knee.
#   probing            the same load with throughput-probing admission
#                      control and NO hand-set concurrency. The run fails
#                      (non-zero exit) unless the converged throughput is
#                      within 10% of the best fixed level — the acceptance
#                      criterion for the controller. Includes the full
#                      admission trace (level/throughput per probe window).
#   offered_load_sweep QPS / p50 / p99 versus offered concurrency on one
#                      resident probing server — the hockey-stick curve.
#
# The manifest carries service_qps / service_p50_ms / service_p99_ms /
# service_admission_level / service_probe_ratio as quality figures, so
# `simprof report` gates regressions against previous runs. The fold step
# appends the svc.* / pool.* counter snapshot under "simprof_metrics" and
# stamps build provenance.
#
# Usage: bench/run_service.sh [perf_service flags, e.g. --max-level 8]
set -e
cd "$(dirname "$0")/.."
. bench/bench_prelude.sh
bench_build perf_service

metrics_tmp=$(mktemp)
trap 'rm -f "$metrics_tmp"' EXIT

"$BENCH_BUILD_DIR"/bench/perf_service \
  --log-level warn \
  --metrics-out "$metrics_tmp" \
  --manifest-out MANIFEST_service.json \
  --out BENCH_service.json \
  "$@"

python3 - "$metrics_tmp" <<'EOF'
import json, os, sys

with open("BENCH_service.json") as f:
    bench = json.load(f)
with open(sys.argv[1]) as f:
    metrics = json.load(f)

counters = metrics.get("counters", {})
fold = {
    "svc": {k.split(".", 1)[1]: v for k, v in counters.items()
            if k.startswith("svc.")},
    "pool": {k.split(".", 1)[1]: v for k, v in counters.items()
             if k.startswith("pool.")},
}
for name in ("svc.queue_wait_ms", "svc.request_ms"):
    hist = metrics.get("quantile_histograms", {}).get(name)
    if hist is not None:
        fold[name] = hist

bench["simprof_metrics"] = fold
with open("BENCH_service.json", "w") as f:
    json.dump(bench, f, indent=1)
    f.write("\n")

probing = bench["probing"]
print("folded metrics snapshot into BENCH_service.json")
print("best_fixed:", bench["best_fixed"],
      "probing_level:", probing["converged_level"],
      "qps_vs_best_fixed:", round(probing["qps_vs_best_fixed"], 3))
EOF
