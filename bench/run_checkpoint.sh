#!/bin/sh
# Refresh BENCH_checkpoint.json — the checkpointed-measurement speedup curve.
#
# Runs perf_checkpoint: WorkloadLab::measure_units over n ∈ {1,2,5,10}
# SMARTS-selected units of grep_sp, once restoring the warm SCKP archives
# recorded by the oracle pass (BM_MeasureCheckpointed) and once planned cold
# with no archives (BM_MeasureNoCheckpoint — detailed simulation from unit 0,
# the path every measurement paid before checkpointing), plus the full
# oracle pass for context. The bench aborts during setup unless both paths
# return bitwise-equal unit records.
#
# The fold step appends the warm/cold speedup per n and the ckpt.* /
# lab.fast_forward* metrics snapshot under a "simprof_metrics" key, and
# stamps build provenance (build_type, git_sha). The headline number is
# speedup_vs_cold at n ≤ 10, expected ≥ 3× on grep_sp at default scale.
#
# Usage: bench/run_checkpoint.sh [extra google-benchmark flags]
set -e
cd "$(dirname "$0")/.."
. bench/bench_prelude.sh
bench_build perf_checkpoint

# The warm path needs archives in the *current* SCKP format. A cached grep_sp
# profile would skip the setup oracle pass and leave stale (or no) archives
# behind, so drop the profile and its archive dir and let the pass regenerate
# both.
cache_dir=${SIMPROF_CACHE_DIR:-.simprof_cache}
rm -f "$cache_dir"/grep_sp-Google-*.sprf
rm -rf "$cache_dir"/ckpt/grep_sp-Google-* "$cache_dir"/ckpt_cold_bench

metrics_tmp=$(mktemp)
trap 'rm -f "$metrics_tmp"' EXIT

"$BENCH_BUILD_DIR"/bench/perf_checkpoint \
  --metrics-out "$metrics_tmp" \
  --manifest-out MANIFEST_checkpoint.json \
  --benchmark_out=BENCH_checkpoint.json \
  --benchmark_out_format=json \
  --benchmark_context=build_type="$SIMPROF_BUILD_TYPE" \
  --benchmark_context=git_sha="$SIMPROF_GIT_SHA" \
  "$@"

python3 - "$metrics_tmp" <<'EOF'
import json, os, sys

with open("BENCH_checkpoint.json") as f:
    bench = json.load(f)
with open(sys.argv[1]) as f:
    metrics = json.load(f)

counters = metrics.get("counters", {})
ckpt = {k.split(".", 1)[1]: v for k, v in counters.items()
        if k.startswith("ckpt.")}
lab = {k.split(".", 1)[1]: v for k, v in counters.items()
       if k.startswith("lab.fast_forward")}

times = {b["name"]: b["real_time"] for b in bench.get("benchmarks", [])
         if b.get("run_type") != "aggregate"}
speedup = {}
for n in (1, 2, 5, 10):
    warm = times.get("BM_MeasureCheckpointed/%d" % n)
    cold = times.get("BM_MeasureNoCheckpoint/%d" % n)
    if warm and cold:
        speedup["units_%d" % n] = round(cold / warm, 2)

bench["build_type"] = os.environ.get("SIMPROF_BUILD_TYPE", "unknown")
bench["git_sha"] = os.environ.get("SIMPROF_GIT_SHA", "unknown")
bench["simprof_metrics"] = {
    "ckpt": ckpt,
    "lab": lab,
    "speedup_vs_cold": speedup,
}
with open("BENCH_checkpoint.json", "w") as f:
    json.dump(bench, f, indent=1)
    f.write("\n")
print("folded metrics snapshot into BENCH_checkpoint.json")
print("speedup_vs_cold:", speedup)
EOF
