// google-benchmark microbenchmarks for the SimProf toolchain itself:
// clustering speed (the reason the paper caps features at K = 100),
// silhouette scoring, feature selection, cache-model throughput, profiling
// overhead (the paper claims a negligible slowdown at the 10M-instruction
// snapshot interval) and sampling-plan construction.
#include <benchmark/benchmark.h>

#include "bench_common.h"
#include "core/phase.h"
#include "core/profile.h"
#include "core/sampling.h"
#include "core/sensitivity.h"
#include "data/kronecker.h"
#include "exec/cluster.h"
#include "hw/access_stream.h"
#include "hw/memory_system.h"
#include "stats/feature_select.h"
#include "stats/kmeans.h"
#include "stats/silhouette.h"
#include "support/rng.h"

namespace {

using namespace simprof;

stats::Matrix synthetic_features(std::size_t n, std::size_t d,
                                 std::size_t clusters, Rng& rng) {
  stats::Matrix m(n, d);
  for (std::size_t i = 0; i < n; ++i) {
    const std::size_t c = i % clusters;
    for (std::size_t j = 0; j < d; ++j) {
      m.at(i, j) = (j % clusters == c ? 1.0 : 0.1) + 0.05 * rng.next_gaussian();
    }
  }
  return m;
}

void BM_KMeans(benchmark::State& state) {
  Rng rng(1);
  const auto k = static_cast<std::size_t>(state.range(0));
  stats::Matrix pts = synthetic_features(1000, 100, 6, rng);
  for (auto _ : state) {
    auto res = stats::kmeans(pts, k, rng);
    benchmark::DoNotOptimize(res.inertia);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_KMeans)->Arg(2)->Arg(8)->Arg(20);

void BM_ChooseK(benchmark::State& state) {
  Rng rng(2);
  stats::Matrix pts = synthetic_features(
      static_cast<std::size_t>(state.range(0)), 100, 5, rng);
  stats::ChooseKConfig cfg;
  cfg.max_k = 20;
  for (auto _ : state) {
    auto res = stats::choose_k(pts, rng, cfg);
    benchmark::DoNotOptimize(res.k);
  }
}
BENCHMARK(BM_ChooseK)->Arg(200)->Arg(800)->Unit(benchmark::kMillisecond);

// Thread-count sweeps for the parallel phase-formation engine. Run via
// bench/run_phase_formation.sh to refresh BENCH_phase_formation.json (the
// perf trajectory across PRs). Output is bit-identical across thread
// counts; only wall clock changes.
void BM_KMeansThreads(benchmark::State& state) {
  Rng rng(1);
  stats::Matrix pts = synthetic_features(1000, 100, 6, rng);
  stats::KMeansConfig cfg;
  cfg.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto res = stats::kmeans(pts, 8, rng, cfg);
    benchmark::DoNotOptimize(res.inertia);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_KMeansThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8);

void BM_ChooseKThreads(benchmark::State& state) {
  Rng rng(2);
  stats::Matrix pts = synthetic_features(800, 100, 5, rng);
  stats::ChooseKConfig cfg;
  cfg.max_k = 20;
  cfg.threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto res = stats::choose_k(pts, rng, cfg);
    benchmark::DoNotOptimize(res.k);
  }
}
BENCHMARK(BM_ChooseKThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SilhouetteExactThreads(benchmark::State& state) {
  Rng rng(3);
  stats::Matrix pts = synthetic_features(2000, 100, 4, rng);
  auto res = stats::kmeans(pts, 4, rng);
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::exact_silhouette(pts, res.labels, 4, threads));
  }
}
BENCHMARK(BM_SilhouetteExactThreads)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_SilhouetteSampled(benchmark::State& state) {
  Rng rng(3);
  stats::Matrix pts = synthetic_features(2000, 100, 4, rng);
  auto res = stats::kmeans(pts, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::sampled_silhouette(pts, res.labels, 4));
  }
}
BENCHMARK(BM_SilhouetteSampled);

void BM_SilhouetteSimplified(benchmark::State& state) {
  Rng rng(3);
  stats::Matrix pts = synthetic_features(2000, 100, 4, rng);
  auto res = stats::kmeans(pts, 4, rng);
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        stats::simplified_silhouette(pts, res.centers, res.labels));
  }
}
BENCHMARK(BM_SilhouetteSimplified);

// Ablation: feature-selection cost and clustering cost vs feature count —
// why the paper caps at the top K = 100 methods.
void BM_FRegression(benchmark::State& state) {
  Rng rng(4);
  const auto d = static_cast<std::size_t>(state.range(0));
  stats::Matrix pts = synthetic_features(1000, d, 5, rng);
  std::vector<double> y(1000);
  for (auto& v : y) v = rng.next_double();
  for (auto _ : state) {
    auto scores = stats::f_regression(pts, y);
    benchmark::DoNotOptimize(scores.data());
  }
}
BENCHMARK(BM_FRegression)->Arg(50)->Arg(100)->Arg(1000);

void BM_CacheAccessSequential(benchmark::State& state) {
  hw::MemorySystem mem({});
  std::uint64_t line = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        mem.access(0, hw::MemRef{line++ % (1 << 18), false, true}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccessSequential);

void BM_CacheAccessRandom(benchmark::State& state) {
  hw::MemorySystem mem({});
  Rng rng(5);
  for (auto _ : state) {
    benchmark::DoNotOptimize(mem.access(
        0, hw::MemRef{rng.next_below(1 << 18), false, false}));
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_CacheAccessRandom);

void BM_KroneckerGeneration(benchmark::State& state) {
  data::KroneckerConfig cfg;
  cfg.scale = static_cast<std::uint32_t>(state.range(0));
  cfg.edge_factor = 8.0;
  for (auto _ : state) {
    auto g = data::kronecker_graph(cfg, false);
    benchmark::DoNotOptimize(g.num_edges());
  }
  state.SetItemsProcessed(
      state.iterations() *
      static_cast<std::int64_t>(cfg.edge_factor * (1u << cfg.scale)));
}
BENCHMARK(BM_KroneckerGeneration)->Arg(12)->Arg(16)
    ->Unit(benchmark::kMillisecond);

// Profiling overhead: executor work with and without the SimProf hook
// attached. The paper tunes the snapshot interval so this gap is negligible.
void run_executor_work(bool with_hook, benchmark::State& state) {
  exec::ClusterConfig cfg;
  cfg.memory.num_cores = 1;
  exec::Cluster cluster(cfg);
  core::SamplingManager manager(cluster.methods());
  if (with_hook) cluster.set_profiling_hook(&manager);
  auto& ctx = cluster.context(0);
  const auto m = cluster.methods().intern("bench.Work.run", jvm::OpKind::kMap);
  for (auto _ : state) {
    jvm::MethodScope scope(ctx.stack(), m);
    hw::SequentialStream stream(0, 1 << 16);
    ctx.execute(1'000'000, &stream);
  }
  state.SetItemsProcessed(state.iterations() * 1'000'000);
}

void BM_ExecuteUnprofiled(benchmark::State& state) {
  run_executor_work(false, state);
}
BENCHMARK(BM_ExecuteUnprofiled);

void BM_ExecuteProfiled(benchmark::State& state) {
  run_executor_work(true, state);
}
BENCHMARK(BM_ExecuteProfiled);

core::ThreadProfile bench_profile(std::size_t units) {
  core::ThreadProfile p;
  for (int m = 0; m < 40; ++m) {
    p.method_names.push_back("m" + std::to_string(m));
    p.method_kinds.push_back(jvm::OpKind::kMap);
  }
  Rng rng(6);
  for (std::size_t i = 0; i < units; ++i) {
    core::UnitRecord u;
    u.unit_id = i;
    u.counters.instructions = 1'000'000;
    u.counters.cycles =
        1'000'000 + static_cast<std::uint64_t>(rng.next_below(2'000'000));
    for (int j = 0; j < 6; ++j) {
      u.methods.push_back(static_cast<jvm::MethodId>((i + 7ull * j) % 40));
      u.counts.push_back(static_cast<std::uint32_t>(1 + rng.next_below(20)));
    }
    p.units.push_back(std::move(u));
  }
  return p;
}

void BM_FormPhases(benchmark::State& state) {
  const auto p = bench_profile(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto model = core::form_phases(p);
    benchmark::DoNotOptimize(model.k);
  }
}
BENCHMARK(BM_FormPhases)->Arg(500)->Arg(2000)->Unit(benchmark::kMillisecond);

void BM_StratifiedPlan(benchmark::State& state) {
  const auto p = bench_profile(2000);
  const auto model = core::form_phases(p);
  std::uint64_t seed = 0;
  for (auto _ : state) {
    auto plan = core::simprof_sample(p, model, 20, seed++);
    benchmark::DoNotOptimize(plan.estimated_cpi);
  }
}
BENCHMARK(BM_StratifiedPlan);

void BM_UnitClassification(benchmark::State& state) {
  const auto train = bench_profile(1000);
  const auto ref = bench_profile(1000);
  const auto model = core::form_phases(train);
  for (auto _ : state) {
    auto labels = core::classify_units(model, ref);
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_UnitClassification);

}  // namespace

// Custom main instead of BENCHMARK_MAIN(): the ObsSession strips the obs
// flags (--log-level/--metrics-out/--trace-out) before google-benchmark
// parses the remainder, so both flag families coexist.
int main(int argc, char** argv) {
  simprof::bench::ObsSession obs_session(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
