// Figure 14: WordCount on Spark — CPI of every sampling unit with its phase
// id, units sorted by phase.
//
// Expected shape (paper): one dominant phase (map-side reduce — Aggregator.
// combineValuesByKey couples map, reduce and IO, with surprisingly stable
// CPI) plus a small HDFS-IO phase with higher CPI variation.
#include "fig_trace_common.h"

int main(int argc, char** argv) {
  simprof::bench::ObsSession obs_session(argc, argv);
  simprof::bench::print_phase_trace("wc_sp", "Figure 14");
  return 0;
}
