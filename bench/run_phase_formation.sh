#!/bin/sh
# Refresh BENCH_phase_formation.json — the phase-formation perf trajectory.
#
# Runs the clustering/silhouette microbenchmarks (including the 1/2/4/8
# thread sweeps), writes google-benchmark JSON to the repo root, then folds
# the observability metrics snapshot (thread-pool utilization, Lloyd
# iteration counts, silhouette sample sizes) into the same file under a
# "simprof_metrics" key. The seed-PR serial baseline is recorded as context
# so future PRs can compare against the original per-pair-loop
# implementation:
#   seed BM_ChooseK/200 ≈ 68.3 ms, BM_ChooseK/800 ≈ 381 ms (1-core CI host).
#
# Usage: bench/run_phase_formation.sh [extra google-benchmark flags]
set -e
cd "$(dirname "$0")/.."
. bench/bench_prelude.sh
bench_build perf_core

metrics_tmp=$(mktemp)
trap 'rm -f "$metrics_tmp"' EXIT

"$BENCH_BUILD_DIR"/bench/perf_core \
  --metrics-out "$metrics_tmp" \
  --manifest-out MANIFEST_phase_formation.json \
  --benchmark_filter='BM_KMeans|BM_ChooseK|BM_Silhouette|BM_FormPhases' \
  --benchmark_out=BENCH_phase_formation.json \
  --benchmark_out_format=json \
  --benchmark_context=seed_BM_ChooseK_200_ms=68.3 \
  --benchmark_context=seed_BM_ChooseK_800_ms=381 \
  --benchmark_context=seed_BM_KMeans_20_ms=27.7 \
  --benchmark_context=seed_BM_SilhouetteSampled_ms=10.0 \
  --benchmark_context=build_type="$SIMPROF_BUILD_TYPE" \
  --benchmark_context=git_sha="$SIMPROF_GIT_SHA" \
  "$@"

python3 - "$metrics_tmp" <<'EOF'
import json, os, sys

with open("BENCH_phase_formation.json") as f:
    bench = json.load(f)
with open(sys.argv[1]) as f:
    metrics = json.load(f)

counters = metrics.get("counters", {})
pool = {k.split(".", 1)[1]: v for k, v in counters.items()
        if k.startswith("pool.")}
keep = {name: metrics.get("histograms", {}).get(name)
        for name in ("kmeans.lloyd_iterations", "silhouette.sample_size")}
bench["build_type"] = os.environ.get("SIMPROF_BUILD_TYPE", "unknown")
bench["git_sha"] = os.environ.get("SIMPROF_GIT_SHA", "unknown")
bench["simprof_metrics"] = {
    "pool": pool,
    "choose_k_sweeps": counters.get("choose_k.sweeps", 0),
    "histograms": {k: v for k, v in keep.items() if v is not None},
}
with open("BENCH_phase_formation.json", "w") as f:
    json.dump(bench, f, indent=1)
    f.write("\n")
print("folded metrics snapshot into BENCH_phase_formation.json")
EOF
