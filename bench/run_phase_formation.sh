#!/bin/sh
# Refresh BENCH_phase_formation.json — the phase-formation perf trajectory.
#
# Runs the clustering/silhouette microbenchmarks (including the 1/2/4/8
# thread sweeps) and writes google-benchmark JSON to the repo root. The
# seed-PR serial baseline is recorded as context so future PRs can compare
# against the original per-pair-loop implementation:
#   seed BM_ChooseK/200 ≈ 68.3 ms, BM_ChooseK/800 ≈ 381 ms (1-core CI host).
#
# Usage: bench/run_phase_formation.sh [extra google-benchmark flags]
set -e
cd "$(dirname "$0")/.."
./build/bench/perf_core \
  --benchmark_filter='BM_KMeans|BM_ChooseK|BM_Silhouette|BM_FormPhases' \
  --benchmark_out=BENCH_phase_formation.json \
  --benchmark_out_format=json \
  --benchmark_context=seed_BM_ChooseK_200_ms=68.3 \
  --benchmark_context=seed_BM_ChooseK_800_ms=381 \
  --benchmark_context=seed_BM_KMeans_20_ms=27.7 \
  --benchmark_context=seed_BM_SilhouetteSampled_ms=10.0 \
  "$@"
