// Ablation: sampling technique shoot-out beyond the paper's four — adds
// pure systematic sampling (SMARTS-style) and the paper's proposed
// future-work combination SimProf+systematic (stratified allocation with
// systematic within-phase picks), plus SimProf with proportional instead of
// Neyman allocation.
//
// Expected: SimProf (Neyman) ≤ SimProf+SYS ≈ SimProf(prop) < SYSTEMATIC/SRS;
// systematic beats SRS on drifting workloads but can alias on periodic ones.
#include <iostream>

#include "bench_common.h"
#include "stats/stratified.h"
#include "support/table.h"

namespace {

using namespace simprof;

/// SimProf variant with proportional allocation (for the ablation column).
double proportional_error(const core::ThreadProfile& prof,
                          const core::PhaseModel& model, std::size_t n,
                          std::uint64_t seed) {
  const auto strata = core::strata_of(model);
  const auto alloc = stats::proportional_allocation(strata, n);
  // Reuse the stratified estimator by drawing per-phase SRS with the
  // proportional sizes.
  std::vector<std::vector<std::size_t>> members(model.k);
  for (std::size_t u = 0; u < model.labels.size(); ++u) {
    members[model.labels[u]].push_back(u);
  }
  Rng rng(seed);
  double est = 0.0;
  const double total = static_cast<double>(prof.num_units());
  for (std::size_t h = 0; h < model.k; ++h) {
    if (alloc[h] == 0 || members[h].empty()) continue;
    shuffle(members[h], rng);
    const std::size_t take = std::min<std::size_t>(alloc[h],
                                                   members[h].size());
    const double w_h = static_cast<double>(members[h].size()) / total;
    double mean = 0.0;
    for (std::size_t i = 0; i < take; ++i) {
      mean += prof.units[members[h][i]].cpi() / static_cast<double>(take);
    }
    est += w_h * mean;
  }
  const double oracle = prof.oracle_cpi();
  return oracle > 0.0 ? std::abs(est - oracle) / oracle : 0.0;
}

}  // namespace

int main(int argc, char** argv) {
  simprof::bench::ObsSession obs_session(argc, argv);
  core::WorkloadLab lab(bench::lab_config());

  std::cout << "Ablation — allocation & within-phase selection (n = "
            << bench::kFig7SampleSize << ", mean error over "
            << bench::kErrorRepetitions << " seeds)\n";
  Table table({"config", "SRS", "SYSTEMATIC", "SimProf_prop", "SimProf+SYS",
               "SimProf"});
  double sums[5] = {};
  for (const auto& name : bench::config_names()) {
    const auto run = lab.run(name);
    const auto& prof = run.profile;
    const auto model = core::form_phases(prof);
    double e[5] = {};
    for (int s = 0; s < bench::kErrorRepetitions; ++s) {
      const std::uint64_t seed = 5000 + s;
      e[0] += core::relative_error(
          core::srs_sample(prof, bench::kFig7SampleSize, seed), prof);
      e[1] += core::relative_error(
          core::systematic_sample(prof, bench::kFig7SampleSize, seed), prof);
      e[2] += proportional_error(prof, model, bench::kFig7SampleSize, seed);
      e[3] += core::relative_error(
          core::simprof_systematic_sample(prof, model,
                                          bench::kFig7SampleSize, seed),
          prof);
      e[4] += core::relative_error(
          core::simprof_sample(prof, model, bench::kFig7SampleSize, seed),
          prof);
    }
    std::vector<std::string> row{name};
    for (int i = 0; i < 5; ++i) {
      e[i] /= bench::kErrorRepetitions;
      sums[i] += e[i];
      row.push_back(Table::pct(e[i]));
    }
    table.row(std::move(row));
  }
  std::vector<std::string> avg{"average"};
  for (double s : sums) {
    avg.push_back(Table::pct(s / bench::config_names().size()));
  }
  table.row(std::move(avg));
  table.print(std::cout);
  return 0;
}
