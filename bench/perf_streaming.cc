// google-benchmark for the online streaming phase former: per-unit ingest
// throughput, time to the first stable model (warmup + first recluster),
// and the full stream-then-finalize pass against batch form_phases on the
// same profile.
//
// Run via bench/run_streaming.sh to refresh BENCH_streaming.json.
// Setup asserts the equivalence contract before any timing: in-order full
// ingestion with no retention cap must finalize to a model bit-identical to
// the batch pipeline — streaming throughput over a drifted model would be
// meaningless.
#include <benchmark/benchmark.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "bench_common.h"
#include "core/streaming.h"

namespace {

using namespace simprof;

constexpr const char* kWorkload = "wc_sp";
constexpr const char* kInput = "Google";

const core::ThreadProfile& oracle() {
  static const core::ThreadProfile p = [] {
    core::WorkloadLab lab(bench::lab_config());
    return lab.run(kWorkload, kInput).profile;
  }();
  return p;
}

const core::PhaseModel& batch_model() {
  static const core::PhaseModel m = core::form_phases(oracle());
  return m;
}

/// One-time contract check before any timing: streamed finalize must be
/// bit-identical to batch on in-order arrival.
void assert_stream_matches_batch() {
  static const bool checked = [] {
    core::StreamingPhaseFormer former{{}};
    former.ingest_range(oracle(), 0, oracle().num_units());
    const core::PhaseModel streamed = former.finalize();
    const core::PhaseModel& batch = batch_model();
    bool same = streamed.k == batch.k && streamed.labels == batch.labels &&
                streamed.centers.rows() == batch.centers.rows() &&
                streamed.centers.cols() == batch.centers.cols();
    if (same) {
      const auto fa = streamed.centers.flat();
      const auto fb = batch.centers.flat();
      same = std::equal(fa.begin(), fa.end(), fb.begin(), fb.end());
    }
    if (!same) {
      std::fprintf(stderr,
                   "perf_streaming: streamed model diverges from batch "
                   "(k=%zu vs %zu) — equivalence contract broken\n",
                   streamed.k, batch.k);
      std::exit(1);
    }
    return true;
  }();
  (void)checked;
}

// --- Ingest throughput: the full stream (reclusters included), units/s.

void BM_StreamIngest(benchmark::State& state) {
  assert_stream_matches_batch();
  const core::ThreadProfile& p = oracle();
  std::size_t reclusters = 0;
  for (auto _ : state) {
    core::StreamingPhaseFormer former{{}};
    former.ingest_range(p, 0, p.num_units());
    reclusters = former.reclusters();
    benchmark::DoNotOptimize(former.model().k);
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(p.num_units()));
  state.counters["units"] = static_cast<double>(p.num_units());
  state.counters["reclusters"] = static_cast<double>(reclusters);
}
BENCHMARK(BM_StreamIngest)->Unit(benchmark::kMillisecond);

// --- Time to the first stable model: warmup ingestion up to and including
// the first recluster — how long a daemon waits before it can select.

void BM_StreamTimeToFirstModel(benchmark::State& state) {
  assert_stream_matches_batch();
  const core::ThreadProfile& p = oracle();
  std::size_t units_needed = 0;
  for (auto _ : state) {
    core::StreamingPhaseFormer former{{}};
    std::size_t u = 0;
    while (!former.has_model() && u < p.num_units()) former.ingest(p, u++);
    units_needed = u;
    benchmark::DoNotOptimize(former.model().k);
  }
  state.counters["units_to_model"] = static_cast<double>(units_needed);
}
BENCHMARK(BM_StreamTimeToFirstModel)->Unit(benchmark::kMillisecond);

// --- Finalize on an already-ingested stream (the last full recluster).

void BM_StreamFinalize(benchmark::State& state) {
  assert_stream_matches_batch();
  const core::ThreadProfile& p = oracle();
  for (auto _ : state) {
    state.PauseTiming();
    core::StreamingPhaseFormer former{{}};
    former.ingest_range(p, 0, p.num_units());
    state.ResumeTiming();
    const core::PhaseModel m = former.finalize();
    benchmark::DoNotOptimize(m.k);
  }
}
BENCHMARK(BM_StreamFinalize)->Unit(benchmark::kMillisecond);

// --- Context: the batch pipeline the streaming path must converge to.

void BM_BatchFormPhases(benchmark::State& state) {
  assert_stream_matches_batch();
  const core::ThreadProfile& p = oracle();
  std::size_t k = 0;
  double silhouette = 0.0;
  for (auto _ : state) {
    const core::PhaseModel m = core::form_phases(p);
    k = m.k;
    if (m.k >= 1 && m.k <= m.silhouette_scores.size()) {
      silhouette = m.silhouette_scores[m.k - 1];
    }
    benchmark::DoNotOptimize(m.k);
  }
  state.counters["batch_k"] = static_cast<double>(k);
  state.counters["silhouette"] = silhouette;
}
BENCHMARK(BM_BatchFormPhases)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main (see perf_core.cc): ObsSession strips the obs flags before
// google-benchmark parses the remainder.
int main(int argc, char** argv) {
  simprof::bench::ObsSession obs_session(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
