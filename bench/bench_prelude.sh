# Shared prelude for bench/run_*.sh — benchmark provenance.
#
# Benchmark numbers from an unoptimized tree are noise, so every run script
# sources this after cd'ing to the repo root. It locates (configuring on
# demand) a Release (-O3) build tree, refuses loudly to run from anything
# else, and exports the provenance that the scripts stamp into every
# emitted BENCH_*.json:
#
#   BENCH_BUILD_DIR    — the enforced Release tree (default build-release,
#                        override with SIMPROF_BENCH_BUILD)
#   SIMPROF_BUILD_TYPE — always "Release" once the checks pass
#   SIMPROF_GIT_SHA    — short sha of HEAD ("unknown" outside git)
#
# bench_build TARGET builds one bench target inside that tree.

BENCH_BUILD_DIR=${SIMPROF_BENCH_BUILD:-build-release}

if [ ! -f "$BENCH_BUILD_DIR/CMakeCache.txt" ]; then
  echo "bench: configuring Release build tree at $BENCH_BUILD_DIR" >&2
  cmake -B "$BENCH_BUILD_DIR" -S . -DCMAKE_BUILD_TYPE=Release >/dev/null
fi

bench_build_type=$(sed -n 's/^CMAKE_BUILD_TYPE:[^=]*=//p' \
  "$BENCH_BUILD_DIR/CMakeCache.txt")
if [ "$bench_build_type" != "Release" ]; then
  echo "bench: FATAL: $BENCH_BUILD_DIR has CMAKE_BUILD_TYPE='$bench_build_type'" >&2
  echo "bench: benchmarks must run from a Release (-O3) tree; reconfigure with" >&2
  echo "bench:   cmake -B $BENCH_BUILD_DIR -S . -DCMAKE_BUILD_TYPE=Release" >&2
  echo "bench: or point SIMPROF_BENCH_BUILD at an existing Release tree." >&2
  exit 1
fi

SIMPROF_BUILD_TYPE=$bench_build_type
SIMPROF_GIT_SHA=$(git rev-parse --short=12 HEAD 2>/dev/null || echo unknown)
export SIMPROF_BUILD_TYPE SIMPROF_GIT_SHA

bench_build() {
  echo "bench: building $1 ($BENCH_BUILD_DIR, $SIMPROF_BUILD_TYPE)" >&2
  cmake --build "$BENCH_BUILD_DIR" -j --target "$1" >/dev/null
}
