// Figure 13: number of input-sensitive vs input-insensitive phases per
// graph workload, accumulated across the seven Table II reference inputs
// (Algorithm 1).
//
// Expected shape (paper): for most workloads at least ~40% of the phases
// are input-INsensitive — the headroom the Figure 12 reduction comes from.
#include <iostream>

#include "bench_common.h"
#include "core/sensitivity.h"
#include "data/catalog.h"
#include "support/table.h"

int main(int argc, char** argv) {
  simprof::bench::ObsSession obs_session(argc, argv);
  using namespace simprof;
  core::WorkloadLab lab(bench::lab_config());
  const auto catalog = data::snap_catalog();

  std::cout << "Figure 13 — input-sensitive vs insensitive phases "
               "(training input: Google, 7 references)\n";
  Table table({"config", "sensitive", "insensitive", "total",
               "insensitive_frac"});
  // Prefetch the whole (config, input) grid in one batch (see Fig. 12).
  std::vector<core::BatchItem> items;
  for (const auto& name : bench::graph_config_names()) {
    items.push_back({name, "Google", {}});
    for (const auto& entry : catalog) {
      if (!entry.training) items.push_back({name, entry.name, {}});
    }
  }
  auto runs = lab.run_batch(items);
  std::size_t next = 0;
  for (const auto& name : bench::graph_config_names()) {
    const auto train = std::move(runs[next++]);
    const auto model = core::form_phases(train.profile);

    std::vector<core::ThreadProfile> ref_profiles;
    std::vector<std::string> ref_names;
    for (const auto& entry : catalog) {
      if (entry.training) continue;
      ref_profiles.push_back(std::move(runs[next++].profile));
      ref_names.push_back(entry.name);
    }
    std::vector<const core::ThreadProfile*> refs;
    for (const auto& p : ref_profiles) refs.push_back(&p);
    const auto report = core::input_sensitivity_test(model, refs, ref_names);

    table.row({name, std::to_string(report.num_sensitive()),
               std::to_string(report.num_insensitive()),
               std::to_string(model.k),
               Table::pct(static_cast<double>(report.num_insensitive()) /
                          static_cast<double>(model.k))});
  }
  table.print(std::cout);
  return 0;
}
