// Figure 7: CPI sampling error of the sampling techniques at sample size 20.
//
// Expected shape (paper: SECOND 6.5%, SRS 8.9%, CODE 4.0%, SimProf 1.6% on
// average): SimProf clearly lowest; SRS/SECOND/CODE each fail somewhere —
// SECOND misses late execution stages, SRS suffers on high-variance runs,
// CODE cannot represent phases whose performance varies under one code
// signature. SMARTS (systematic sampling with checkpointed measurement,
// Wunderlich et al.) is added as a fifth column: its selection math is
// systematic, so its error sits between SRS and SimProf; its advantage is
// measurement cost (O(selected units) via WorkloadLab::measure_units), not
// accuracy. Probabilistic techniques (SRS, SimProf, SMARTS with its random
// offset) are averaged over several seeds so single lucky/unlucky draws
// don't dominate the table.
#include <iostream>

#include "bench_common.h"
#include "support/table.h"

int main(int argc, char** argv) {
  simprof::bench::ObsSession obs_session(argc, argv);
  using namespace simprof;
  core::WorkloadLab lab(bench::lab_config());

  std::cout << "Figure 7 — CPI sampling error (sample size "
            << bench::kFig7SampleSize << ")\n";
  Table table({"config", "SECOND", "SRS", "CODE", "SMARTS", "SimProf"});
  double sums[5] = {};
  const auto runs = bench::run_configs(lab, bench::config_names());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& name = bench::config_names()[i];
    const auto& prof = runs[i].profile;
    const auto model = core::form_phases(prof);

    const double e_second = core::relative_error(
        core::second_sample(prof, bench::kSecondInterval, bench::kClockGhz),
        prof);
    const double e_code =
        core::relative_error(core::code_sample(prof, model), prof);
    double e_srs = 0.0, e_smarts = 0.0, e_simprof = 0.0;
    for (int s = 0; s < bench::kErrorRepetitions; ++s) {
      e_srs += core::relative_error(
          core::srs_sample(prof, bench::kFig7SampleSize, 1000 + s), prof);
      e_smarts += core::relative_error(
          core::smarts_sample(prof, bench::kFig7SampleSize, 1000 + s), prof);
      e_simprof += core::relative_error(
          core::simprof_sample(prof, model, bench::kFig7SampleSize, 1000 + s),
          prof);
    }
    e_srs /= bench::kErrorRepetitions;
    e_smarts /= bench::kErrorRepetitions;
    e_simprof /= bench::kErrorRepetitions;

    table.row({name, Table::pct(e_second), Table::pct(e_srs),
               Table::pct(e_code), Table::pct(e_smarts),
               Table::pct(e_simprof)});
    sums[0] += e_second;
    sums[1] += e_srs;
    sums[2] += e_code;
    sums[3] += e_smarts;
    sums[4] += e_simprof;
  }
  const double n = static_cast<double>(bench::config_names().size());
  table.row({"average", Table::pct(sums[0] / n), Table::pct(sums[1] / n),
             Table::pct(sums[2] / n), Table::pct(sums[3] / n),
             Table::pct(sums[4] / n)});
  table.print(std::cout);
  return 0;
}
