// Figure 10: phase-type distribution — the fraction of sampling units whose
// phase is dominated by map / reduce / sort / IO operations.
//
// Expected shape (paper): sort appears in Hadoop workloads (map-side
// sort/spill) but not in Spark ones (disabled by default); Hadoop spends
// more of its units in IO than Spark — one reason Spark outperforms Hadoop.
#include <iostream>

#include "bench_common.h"
#include "support/table.h"

int main(int argc, char** argv) {
  simprof::bench::ObsSession obs_session(argc, argv);
  using namespace simprof;
  core::WorkloadLab lab(bench::lab_config());

  std::cout << "Figure 10 — phase type distribution (unit-weighted)\n";
  Table table({"config", "map", "reduce", "sort", "io", "other"});
  const auto runs = bench::run_configs(lab, bench::config_names());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& name = bench::config_names()[i];
    const auto model = core::form_phases(runs[i].profile);
    double w[5] = {};  // map, reduce, sort, io, other
    for (std::size_t h = 0; h < model.k; ++h) {
      const double weight = model.phases[h].weight;
      switch (model.phase_types[h]) {
        case jvm::OpKind::kMap:
        case jvm::OpKind::kCompute: w[0] += weight; break;
        case jvm::OpKind::kReduce: w[1] += weight; break;
        case jvm::OpKind::kSort: w[2] += weight; break;
        case jvm::OpKind::kIo:
        case jvm::OpKind::kShuffle: w[3] += weight; break;
        default: w[4] += weight; break;
      }
    }
    table.row({name, Table::pct(w[0]), Table::pct(w[1]), Table::pct(w[2]),
               Table::pct(w[3]), Table::pct(w[4])});
  }
  table.print(std::cout);
  return 0;
}
