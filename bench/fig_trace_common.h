// Shared trace emitter for Figures 14 and 15: per-unit CPI with phase ids,
// units sorted by phase id (the paper's x-axis), plus a per-phase summary
// with each phase's dominant non-framework method.
#pragma once

#include <algorithm>
#include <iostream>
#include <numeric>
#include <string>

#include "bench_common.h"
#include "support/table.h"

namespace simprof::bench {

inline void print_phase_trace(const std::string& config_name,
                              const std::string& figure) {
  core::WorkloadLab lab(lab_config());
  const auto run = lab.run_batch({core::BatchItem{config_name, "Google", {}}}).front();
  const auto& prof = run.profile;
  const auto model = core::form_phases(prof);

  std::cout << figure << " — " << config_name
            << " CPI trace (units sorted by phase id)\n"
            << "profile: " << (run.from_cache ? "cache hit" : "fresh run")
            << " (" << run.cache_path << ")\n";

  // Per-phase summary.
  Table summary({"phase", "units", "weight", "mean_cpi", "cov_cpi",
                 "type", "dominant_method"});
  for (std::size_t h = 0; h < model.k; ++h) {
    std::size_t best_f = 0;
    double best_w = -1.0;
    for (std::size_t f = 0; f < model.feature_names.size(); ++f) {
      if (model.feature_kinds[f] == jvm::OpKind::kFramework) continue;
      if (model.centers.at(h, f) > best_w) {
        best_w = model.centers.at(h, f);
        best_f = f;
      }
    }
    summary.row({std::to_string(h), std::to_string(model.phases[h].count),
                 Table::pct(model.phases[h].weight),
                 Table::num(model.phases[h].mean_cpi),
                 Table::num(model.phases[h].cov),
                 std::string(jvm::to_string(model.phase_types[h])),
                 model.feature_names.empty() ? "-"
                                             : model.feature_names[best_f]});
  }
  summary.print_aligned(std::cout);

  // The series itself: units sorted by (phase, original unit id).
  std::vector<std::size_t> order(prof.num_units());
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return model.labels[a] != model.labels[b]
               ? model.labels[a] < model.labels[b]
               : a < b;
  });
  std::cout << "-- csv --\nindex,unit_id,cpi,phase\n";
  for (std::size_t i = 0; i < order.size(); ++i) {
    const std::size_t u = order[i];
    std::cout << i << ',' << prof.units[u].unit_id << ','
              << Table::num(prof.units[u].cpi()) << ',' << model.labels[u]
              << '\n';
  }
}

}  // namespace simprof::bench
