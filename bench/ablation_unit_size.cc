// Ablation: sampling-unit size (Section III-A). The paper chooses a large
// unit (100M instructions, 1M here) "to avoid the simulation start-up
// effect"; smaller units raise per-unit CPI variance (cold-cache edges and
// scheduling noise occupy a larger fraction of each unit) which inflates
// the sample sizes required for a given confidence target.
//
// Runs one representative config per framework at 4×, 1× and 1/4× the
// default unit size (each is a separate oracle run — this is the slowest
// ablation, a few extra runs per config).
#include <iostream>

#include "bench_common.h"
#include "support/table.h"

int main(int argc, char** argv) {
  simprof::bench::ObsSession obs_session(argc, argv);
  using namespace simprof;
  const std::uint64_t sizes[] = {250'000, 1'000'000, 4'000'000};

  std::cout << "Ablation — sampling-unit size (units | population CoV | "
               "SimProf n@5%)\n";
  Table table({"config", "unit=250K", "unit=1M (default)", "unit=4M"});
  for (const char* name : {"wc_hp", "wc_sp", "cc_sp"}) {
    std::vector<std::string> row{name};
    for (const std::uint64_t unit : sizes) {
      core::LabConfig cfg = bench::lab_config();
      cfg.unit_instrs = unit;
      core::WorkloadLab lab(cfg);
      const auto run = lab.run(name);
      const auto model = core::form_phases(run.profile);
      const auto cov = core::cov_summary(run.profile, model);
      const auto n5 = core::required_sample_size(model, 0.05);
      row.push_back(std::to_string(run.profile.num_units()) + " | " +
                    Table::num(cov.population, 2) + " | " +
                    std::to_string(n5));
    }
    table.row(std::move(row));
  }
  table.print(std::cout);
  std::cout << "note: required n@5% counts units of the respective size; "
               "compare simulated instructions = n × unit size.\n";
  return 0;
}
