// Figure 8: required sample size (number of sampling units) of SimProf at
// the 99.7% confidence level for 5% and 2% error targets, against the
// SECOND interval's unit count.
//
// Expected shape (paper: averages SECOND 611, SimProf@5% 85, SimProf@2%
// 244): SimProf needs far fewer units than SECOND for most configs, with
// cc_sp / rank_sp as the exceptions (many high-variance phases).
#include <iostream>

#include "bench_common.h"
#include "support/table.h"

int main(int argc, char** argv) {
  simprof::bench::ObsSession obs_session(argc, argv);
  using namespace simprof;
  core::WorkloadLab lab(bench::lab_config());

  std::cout << "Figure 8 — required sample size, 99.7% confidence\n";
  Table table({"config", "total_units", "SECOND", "SimProf_0.05",
               "SimProf_0.02"});
  double sums[3] = {};
  const auto runs = bench::run_configs(lab, bench::config_names());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& name = bench::config_names()[i];
    const auto& prof = runs[i].profile;
    const auto model = core::form_phases(prof);
    const auto second =
        core::second_sample(prof, bench::kSecondInterval, bench::kClockGhz);
    const auto n5 = core::required_sample_size(model, 0.05);
    const auto n2 = core::required_sample_size(model, 0.02);
    table.row({name, std::to_string(prof.num_units()),
               std::to_string(second.sample_size()), std::to_string(n5),
               std::to_string(n2)});
    sums[0] += static_cast<double>(second.sample_size());
    sums[1] += static_cast<double>(n5);
    sums[2] += static_cast<double>(n2);
  }
  const double n = static_cast<double>(bench::config_names().size());
  table.row({"average", "", Table::num(sums[0] / n, 0),
             Table::num(sums[1] / n, 0), Table::num(sums[2] / n, 0)});
  table.print(std::cout);
  return 0;
}
