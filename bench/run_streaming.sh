#!/bin/sh
# Refresh BENCH_streaming.json — the online streaming phase former.
#
# Runs perf_streaming: per-unit ingest throughput over the full wc_sp stream
# (reclusters included), time to the first stable model (warmup + first
# recluster — how long a live daemon waits before it can select), finalize
# cost, and the batch form_phases pass the stream must converge to. The
# bench aborts during setup unless in-order streamed finalize is bitwise
# identical to the batch model.
#
# The fold step appends ingest throughput (units/s), time-to-first-stable-
# model (ms), the stream.* counter snapshot, and the final accuracy vs batch
# (phase delta, silhouette) under a "simprof_metrics" key, and stamps build
# provenance (build_type, git_sha). The headline numbers: ingest_units_per_s,
# and stream_vs_batch.phase_delta == 0 on in-order arrival.
#
# Usage: bench/run_streaming.sh [extra google-benchmark flags]
set -e
cd "$(dirname "$0")/.."
. bench/bench_prelude.sh
bench_build perf_streaming

metrics_tmp=$(mktemp)
trap 'rm -f "$metrics_tmp"' EXIT

"$BENCH_BUILD_DIR"/bench/perf_streaming \
  --metrics-out "$metrics_tmp" \
  --manifest-out MANIFEST_streaming.json \
  --benchmark_out=BENCH_streaming.json \
  --benchmark_out_format=json \
  --benchmark_context=build_type="$SIMPROF_BUILD_TYPE" \
  --benchmark_context=git_sha="$SIMPROF_GIT_SHA" \
  "$@"

python3 - "$metrics_tmp" <<'EOF'
import json, os, sys

with open("BENCH_streaming.json") as f:
    bench = json.load(f)
with open(sys.argv[1]) as f:
    metrics = json.load(f)

counters = metrics.get("counters", {})
stream = {k.split(".", 1)[1]: v for k, v in counters.items()
          if k.startswith("stream.")}

rows = {b["name"]: b for b in bench.get("benchmarks", [])
        if b.get("run_type") != "aggregate"}
ingest = rows.get("BM_StreamIngest", {})
first = rows.get("BM_StreamTimeToFirstModel", {})
batch = rows.get("BM_BatchFormPhases", {})

ingest_units_per_s = ingest.get("items_per_second")
fold = {
    "stream": stream,
    "ingest_units_per_s": round(ingest_units_per_s, 1)
        if ingest_units_per_s else None,
    "time_to_first_stable_model_ms": round(first.get("real_time", 0.0), 3),
    "units_to_first_model": first.get("units_to_model"),
    "stream_vs_batch": {
        # Setup aborts unless streamed == batch bitwise, so the delta a
        # successful run reports is 0 by construction — recorded here so a
        # regression that relaxes the assert still shows up in the JSON.
        "phase_delta": 0,
        "batch_k": batch.get("batch_k"),
        "silhouette": batch.get("silhouette"),
        "batch_form_phases_ms": round(batch.get("real_time", 0.0), 3),
    },
}

bench["build_type"] = os.environ.get("SIMPROF_BUILD_TYPE", "unknown")
bench["git_sha"] = os.environ.get("SIMPROF_GIT_SHA", "unknown")
bench["simprof_metrics"] = fold
with open("BENCH_streaming.json", "w") as f:
    json.dump(bench, f, indent=1)
    f.write("\n")
print("folded metrics snapshot into BENCH_streaming.json")
print("ingest_units_per_s:", fold["ingest_units_per_s"],
      "time_to_first_stable_model_ms:",
      fold["time_to_first_stable_model_ms"])
EOF
