// Shared setup for the figure-reproduction benches.
//
// Every bench loads profiles through one WorkloadLab (disk-cached, so the
// oracle pass per configuration runs once across the whole suite), forms
// phases with the paper's defaults, and prints an aligned table plus a CSV
// block via support/table.h.
//
// Environment knobs:
//   SIMPROF_SCALE      — data-volume scale (default 1.0)
//   SIMPROF_CACHE_DIR  — profile cache directory (default .simprof_cache)
#pragma once

#include <cstdlib>
#include <string>
#include <vector>

#include "core/lab.h"
#include "core/phase.h"
#include "core/sampling.h"

namespace simprof::bench {

/// Paper-order config names (Table I).
inline const std::vector<std::string>& config_names() {
  static const std::vector<std::string> names = {
      "sort_hp", "sort_sp", "wc_hp",    "wc_sp",    "grep_hp", "grep_sp",
      "bayes_hp", "bayes_sp", "cc_hp",  "cc_sp",    "rank_hp", "rank_sp"};
  return names;
}

/// The four graph configs of the input-sensitivity study (Figs. 12/13).
inline const std::vector<std::string>& graph_config_names() {
  static const std::vector<std::string> names = {"cc_hp", "cc_sp", "rank_hp",
                                                 "rank_sp"};
  return names;
}

inline core::LabConfig lab_config() {
  core::LabConfig cfg;
  if (const char* s = std::getenv("SIMPROF_SCALE")) cfg.scale = atof(s);
  return cfg;
}

/// The scaled SECOND baseline: the paper uses 10 s and the whole environment
/// is scaled 1/100, so SECOND is 0.1 virtual seconds at the 2 GHz virtual
/// clock.
inline constexpr double kSecondInterval = 0.1;
inline constexpr double kClockGhz = 2.0;

/// Fig. 7 sample size (paper: 20 simulation points).
inline constexpr std::size_t kFig7SampleSize = 20;

/// Seeds used to average the probabilistic techniques in Fig. 7.
inline constexpr int kErrorRepetitions = 7;

}  // namespace simprof::bench
