// Shared setup for the figure-reproduction benches.
//
// Every bench loads profiles through one WorkloadLab (disk-cached, so the
// oracle pass per configuration runs once across the whole suite), forms
// phases with the paper's defaults, and prints an aligned table plus a CSV
// block via support/table.h.
//
// Environment knobs:
//   SIMPROF_SCALE      — data-volume scale (default 1.0)
//   SIMPROF_CACHE_DIR  — profile cache directory (default .simprof_cache)
//
// Observability flags (every bench, stripped before any other parsing):
//   --log-level LEVEL  — trace|debug|info|warn|error|off
//   --metrics-out FILE — JSON metrics snapshot written at exit
//   --trace-out FILE   — Chrome trace events (Perfetto) written at exit
//   --manifest-out F   — run-manifest path (default: automatic under
//                        $SIMPROF_MANIFEST_DIR or .simprof_manifests/)
//   --no-manifest      — skip the run manifest
#pragma once

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>
#include <vector>

#include "core/checkpoint.h"
#include "core/lab.h"
#include "core/phase.h"
#include "core/sampling.h"
#include "obs/obs.h"

namespace simprof::bench {

/// RAII observability session for bench mains: strips the obs flags out of
/// argc/argv (so downstream parsers like google-benchmark never see them),
/// applies the log level, arms tracing, starts the run ledger, and writes
/// the requested trace / metrics files plus the run manifest on destruction.
class ObsSession {
 public:
  ObsSession(int& argc, char** argv) {
    std::vector<std::string> raw_args(argv + 1, argv + argc);
    bool no_manifest = false;
    std::string manifest_out;
    int keep = 1;
    for (int i = 1; i < argc; ++i) {
      std::string value;
      if (match(argc, argv, i, "--log-level", value)) {
        if (const auto level = obs::parse_log_level(value)) {
          obs::set_log_level(*level);
        } else {
          std::cerr << "warning: ignoring unknown --log-level '" << value
                    << "'\n";
        }
      } else if (match(argc, argv, i, "--metrics-out", value)) {
        metrics_out_ = value;
      } else if (match(argc, argv, i, "--trace-out", value)) {
        trace_out_ = value;
      } else if (match(argc, argv, i, "--manifest-out", value)) {
        manifest_out = value;
      } else if (std::strcmp(argv[i], "--no-manifest") == 0) {
        no_manifest = true;
      } else {
        argv[keep++] = argv[i];
      }
    }
    argc = keep;

    // Bench name from argv[0]'s basename — the manifest's verb.
    std::string verb = argv[0];
    if (const auto slash = verb.find_last_of('/');
        slash != std::string::npos) {
      verb = verb.substr(slash + 1);
    }
    obs::ledger().begin("simprof-bench", verb, std::move(raw_args));
    obs::ledger().set_schema("cache", core::kLabCacheSchema);
    obs::ledger().set_schema("checkpoint", core::kCheckpointVersion);
    if (no_manifest) obs::ledger().disable();
    if (!manifest_out.empty()) obs::ledger().set_output_path(manifest_out);
    if (const char* s = std::getenv("SIMPROF_SCALE")) {
      obs::ledger().set_config("scale", s);
    }
    // Span rollups need trace events, so a manifest-emitting bench always
    // collects spans (observation only — cannot perturb results).
    if (!trace_out_.empty() || obs::ledger().enabled()) obs::start_tracing();
  }

  ~ObsSession() {
    if (obs::trace_enabled()) obs::stop_tracing();
    if (!trace_out_.empty()) obs::write_trace(trace_out_);
    if (!metrics_out_.empty()) obs::metrics().write_json(metrics_out_);
    obs::ledger().write();
  }

  ObsSession(const ObsSession&) = delete;
  ObsSession& operator=(const ObsSession&) = delete;

 private:
  /// "--flag VALUE" (consumes the next arg) or "--flag=VALUE".
  static bool match(int argc, char** argv, int& i, const char* flag,
                    std::string& value) {
    const std::size_t len = std::strlen(flag);
    if (std::strncmp(argv[i], flag, len) != 0) return false;
    if (argv[i][len] == '=') {
      value = argv[i] + len + 1;
      return true;
    }
    if (argv[i][len] == '\0' && i + 1 < argc) {
      value = argv[++i];
      return true;
    }
    return false;
  }

  std::string metrics_out_;
  std::string trace_out_;
};

/// Paper-order config names (Table I).
inline const std::vector<std::string>& config_names() {
  static const std::vector<std::string> names = {
      "sort_hp", "sort_sp", "wc_hp",    "wc_sp",    "grep_hp", "grep_sp",
      "bayes_hp", "bayes_sp", "cc_hp",  "cc_sp",    "rank_hp", "rank_sp"};
  return names;
}

/// The four graph configs of the input-sensitivity study (Figs. 12/13).
inline const std::vector<std::string>& graph_config_names() {
  static const std::vector<std::string> names = {"cc_hp", "cc_sp", "rank_hp",
                                                 "rank_sp"};
  return names;
}

inline core::LabConfig lab_config() {
  core::LabConfig cfg;
  if (const char* s = std::getenv("SIMPROF_SCALE")) cfg.scale = atof(s);
  // Figure benches sweep dozens of configurations and only consume the
  // profiles, so checkpoint recording (≈100MB of archives per oracle pass)
  // stays off here; perf_checkpoint re-enables it for its warm lab.
  cfg.checkpoint_stride = 0;
  return cfg;
}

/// Fetch the profiles for `names` on one graph input through lab.run_batch:
/// cache misses simulate concurrently on the thread pool while hits decode
/// alongside them. Results come back in name order and are bit-identical to
/// serial lab.run() calls.
inline std::vector<core::LabRun> run_configs(
    core::WorkloadLab& lab, const std::vector<std::string>& names,
    const std::string& graph_input = "Google") {
  std::vector<core::BatchItem> items;
  items.reserve(names.size());
  for (const auto& name : names) items.push_back({name, graph_input, {}});
  return lab.run_batch(items);
}

/// The scaled SECOND baseline: the paper uses 10 s and the whole environment
/// is scaled 1/100, so SECOND is 0.1 virtual seconds at the 2 GHz virtual
/// clock.
inline constexpr double kSecondInterval = 0.1;
inline constexpr double kClockGhz = 2.0;

/// Fig. 7 sample size (paper: 20 simulation points).
inline constexpr std::size_t kFig7SampleSize = 20;

/// Seeds used to average the probabilistic techniques in Fig. 7.
inline constexpr int kErrorRepetitions = 7;

}  // namespace simprof::bench
