// Saturation-curve bench for the service daemon (run via
// bench/run_service.sh → BENCH_service.json).
//
// Unlike the perf_* google-benchmark suites this is a custom sweep driver:
// the quantity under test is the whole daemon's throughput knee, not a
// single timed region. Three phases, all against in-process ServiceServer
// instances sharing one warm lab cache (the oracle pass runs once, during
// pre-warm, so every swept request measures dispatch + decode + analysis —
// the daemon's steady-state cost):
//
//   1. Exhaustive fixed sweep — pin admission to each level 1..max and
//      drive identical offered load; the per-level QPS is the measured
//      saturation curve and its argmax is the ground-truth knee (C*, QPS*).
//   2. Probing run — same load, admission control on, no hand-set
//      concurrency. The converged level/throughput (admission-trace tail)
//      must reach within 10% of QPS* or the bench exits non-zero — this is
//      the acceptance criterion for the throughput-probing controller.
//   3. Offered-load sweep — QPS / p50 / p99 versus offered concurrency on
//      one resident probing server, the classic hockey-stick latency curve.
//
// Flags (after the common obs flags): --out FILE, --scale F, --max-level N,
// --requests N (per client, fixed sweep), --probe-interval-ms N.
#include <unistd.h>

#include <algorithm>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <filesystem>
#include <fstream>
#include <numeric>
#include <string>
#include <vector>

#include "bench_common.h"
#include "service/loadgen.h"
#include "service/server.h"

namespace {

using namespace simprof;

constexpr const char* kWorkload = "grep_sp";
constexpr const char* kInput = "Google";

struct BenchOptions {
  std::string out = "BENCH_service.json";
  /// Request cost must dwarf socket/dispatch overhead or the saturation
  /// curve is all noise; 0.4 gives ~2–3 ms of decode + analysis per request.
  double scale = 0.4;
  std::size_t max_level = 6;
  std::size_t requests_per_client = 80;
  std::uint32_t probe_interval_ms = 50;
};

struct SweepPoint {
  std::size_t level = 0;     ///< fixed admission level (fixed sweep)
  std::size_t offered = 0;   ///< clients × inflight (offered-load sweep)
  double mean_qps = 0.0;     ///< mean across sweep passes (fixed sweep)
  std::vector<service::LoadgenReport> reports;  ///< one per pass
};

core::LabConfig make_lab_config(const BenchOptions& opt,
                                const std::string& cache_dir) {
  core::LabConfig lab = bench::lab_config();
  lab.scale = opt.scale;
  lab.graph_scale_override = 12;
  lab.cache_dir = cache_dir;
  lab.checkpoint_stride = 0;
  return lab;
}

service::LoadgenConfig make_load(const std::string& socket, std::size_t clients,
                                 std::size_t inflight, std::size_t requests,
                                 const BenchOptions& opt) {
  service::LoadgenConfig lg;
  lg.socket_path = socket;
  lg.clients = clients;
  lg.inflight_per_client = inflight;
  lg.requests_per_client = requests;
  lg.workloads = {kWorkload};
  lg.input = kInput;
  lg.scale = opt.scale;
  lg.seed = 42;
  lg.analyze = true;
  lg.sample_n = 8;
  return lg;
}

/// Run one (server config, load) pair to completion; the server is fully
/// drained and joined before the report is returned.
struct RunResult {
  service::LoadgenReport report;
  service::ServerStats stats;
  std::vector<service::AdmissionTracePoint> trace;
};

RunResult run_once(service::ServiceConfig cfg,
                   const service::LoadgenConfig& load) {
  service::ServiceServer server(std::move(cfg));
  server.start();
  RunResult out;
  out.report = service::run_loadgen(load);
  out.stats = server.stats();
  out.trace = server.admission_trace();
  server.request_stop();
  server.wait();
  return out;
}

/// Steady-state throughput: mean of the trace's last few active windows.
/// The loadgen QPS includes the convergence transient; the tail is what the
/// controller actually settled on.
double trace_tail_qps(const std::vector<service::AdmissionTracePoint>& trace,
                      std::size_t tail = 12) {
  if (trace.empty()) return 0.0;
  const std::size_t n = std::min(tail, trace.size());
  double sum = 0.0;
  for (std::size_t i = trace.size() - n; i < trace.size(); ++i) {
    sum += trace[i].throughput;
  }
  return sum / static_cast<double>(n);
}

void write_report(std::ostream& os, const service::LoadgenReport& r) {
  os << "{\"completed\": " << r.completed << ", \"rejected\": " << r.rejected
     << ", \"errors\": " << r.errors << ", \"elapsed_sec\": " << r.elapsed_sec
     << ", \"qps\": " << r.qps << ", \"p50_ms\": " << r.p50_ms
     << ", \"p90_ms\": " << r.p90_ms << ", \"p99_ms\": " << r.p99_ms << "}";
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs_session(argc, argv);
  BenchOptions opt;
  for (int i = 1; i < argc; ++i) {
    auto next = [&](const char* flag) -> const char* {
      if (i + 1 >= argc) {
        std::fprintf(stderr, "perf_service: %s needs a value\n", flag);
        std::exit(2);
      }
      return argv[++i];
    };
    if (std::strcmp(argv[i], "--out") == 0) {
      opt.out = next("--out");
    } else if (std::strcmp(argv[i], "--scale") == 0) {
      opt.scale = std::atof(next("--scale"));
    } else if (std::strcmp(argv[i], "--max-level") == 0) {
      opt.max_level = static_cast<std::size_t>(
          std::strtoull(next("--max-level"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--requests") == 0) {
      opt.requests_per_client = static_cast<std::size_t>(
          std::strtoull(next("--requests"), nullptr, 10));
    } else if (std::strcmp(argv[i], "--probe-interval-ms") == 0) {
      opt.probe_interval_ms = static_cast<std::uint32_t>(
          std::strtoul(next("--probe-interval-ms"), nullptr, 10));
    } else {
      std::fprintf(stderr, "perf_service: unknown flag %s\n", argv[i]);
      return 2;
    }
  }
  opt.max_level = std::max<std::size_t>(opt.max_level, 2);

  namespace fs = std::filesystem;
  const fs::path scratch =
      fs::temp_directory_path() /
      ("simprof_perf_service_" + std::to_string(::getpid()));
  fs::create_directories(scratch);
  const std::string socket = (scratch / "sock").string();
  const std::string cache_dir = (scratch / "cache").string();

  obs::ledger().set_config("workload", kWorkload);
  obs::ledger().set_config("input", kInput);
  obs::ledger().set_config("scale", std::to_string(opt.scale));
  obs::ledger().set_config("max_level", std::to_string(opt.max_level));

  service::ServiceConfig base;
  base.socket_path = socket;
  base.lab = make_lab_config(opt, cache_dir);
  base.admission.min_concurrency = 1;
  base.admission.max_concurrency = opt.max_level;
  base.admission.probe_interval_ms = opt.probe_interval_ms;
  base.max_queue = 256;
  base.client_max_inflight = 16;

  // Pre-warm: one request pays the oracle pass so every swept request below
  // measures the daemon's steady state (cache decode + analysis), not a
  // one-time simulation.
  std::fprintf(stderr, "perf_service: pre-warming lab cache...\n");
  {
    service::ServiceConfig warm = base;
    warm.fixed_concurrency = true;
    warm.admission.initial_concurrency = 1;
    run_once(std::move(warm), make_load(socket, 1, 1, 1, opt));
  }

  // Unmeasured warmup burst: lets the allocator, page cache and CPU settle
  // so the first measured level isn't systematically slower (or faster)
  // than the rest.
  {
    service::ServiceConfig cfg = base;
    cfg.fixed_concurrency = true;
    cfg.admission.initial_concurrency = 2;
    run_once(std::move(cfg), make_load(socket, 4, 2, 8, opt));
  }

  // Phase 1: exhaustive fixed-concurrency sweep at constant offered load.
  // Offered concurrency (clients × inflight) exceeds every swept level so
  // each level runs saturated and the per-level QPS is the curve itself.
  // Two passes per level, averaged: a single pass's argmax is biased high
  // by run-to-run noise (max over N noisy samples), which would unfairly
  // penalise the probing run it is compared against.
  constexpr std::size_t kSweepPasses = 2;
  const std::size_t sweep_clients = opt.max_level + 2;
  const std::size_t sweep_inflight = 2;
  std::vector<SweepPoint> fixed_sweep(opt.max_level);
  for (std::size_t level = 1; level <= opt.max_level; ++level) {
    fixed_sweep[level - 1].level = level;
  }
  for (std::size_t pass = 0; pass < kSweepPasses; ++pass) {
    for (std::size_t level = 1; level <= opt.max_level; ++level) {
      service::ServiceConfig cfg = base;
      cfg.fixed_concurrency = true;
      cfg.admission.initial_concurrency = level;
      RunResult run = run_once(
          std::move(cfg),
          make_load(socket, sweep_clients, sweep_inflight,
                    opt.requests_per_client, opt));
      std::fprintf(stderr,
                   "perf_service: fixed level %zu (pass %zu) -> %.1f qps "
                   "(p99 %.1f ms)\n",
                   level, pass + 1, run.report.qps, run.report.p99_ms);
      fixed_sweep[level - 1].reports.push_back(run.report);
    }
  }
  std::size_t best_level = 1;
  double best_qps = 0.0;
  for (auto& pt : fixed_sweep) {
    double sum = 0.0;
    for (const auto& r : pt.reports) sum += r.qps;
    pt.mean_qps = sum / static_cast<double>(pt.reports.size());
    if (pt.mean_qps > best_qps) {
      best_qps = pt.mean_qps;
      best_level = pt.level;
    }
  }

  // Phase 2: the probing run. Same offered load, default initial level, no
  // hand-set concurrency anywhere — the controller has to find the knee on
  // its own. Longer than a fixed run so the convergence transient amortises
  // and the trace tail reflects the settled level.
  service::ServiceConfig probing_cfg = base;
  probing_cfg.fixed_concurrency = false;
  RunResult probing = run_once(
      std::move(probing_cfg),
      make_load(socket, sweep_clients, sweep_inflight,
                opt.requests_per_client * 3, opt));
  const double probing_tail_qps = trace_tail_qps(probing.trace);
  const std::size_t converged_level = probing.stats.admission_level;

  // Confirmation run: the converged level re-measured exactly like a sweep
  // level (fixed, same load, no transient). This scores the *operating
  // point the controller chose* with the same estimator the sweep used —
  // the whole-run probing QPS also carries the convergence transient and
  // the periodic probe dips, which are the cost of probing, not of the
  // chosen level.
  double converged_fixed_qps = 0.0;
  {
    service::ServiceConfig cfg = base;
    cfg.fixed_concurrency = true;
    cfg.admission.initial_concurrency = converged_level;
    RunResult confirm = run_once(
        std::move(cfg),
        make_load(socket, sweep_clients, sweep_inflight,
                  opt.requests_per_client, opt));
    converged_fixed_qps = confirm.report.qps;
  }

  const double probing_qps = std::max(
      {probing.report.qps, probing_tail_qps, converged_fixed_qps});
  const bool within_10pct = probing_qps >= 0.9 * best_qps;
  std::fprintf(stderr,
               "perf_service: probing converged at level %zu, %.1f qps "
               "(tail %.1f, confirm %.1f) vs best fixed %.1f qps at level "
               "%zu -> %s\n",
               converged_level, probing.report.qps, probing_tail_qps,
               converged_fixed_qps, best_qps, best_level,
               within_10pct ? "within 10%" : "MISSED 10%");

  // Phase 3: offered-load sweep on one resident probing server — the
  // QPS / p50 / p99 hockey-stick as offered concurrency crosses the knee.
  std::vector<SweepPoint> offered_sweep;
  {
    service::ServiceConfig cfg = base;
    cfg.fixed_concurrency = false;
    service::ServiceServer server(std::move(cfg));
    server.start();
    for (std::size_t offered : {std::size_t{1}, std::size_t{2}, std::size_t{4},
                                std::size_t{6}, std::size_t{8},
                                std::size_t{12}}) {
      service::LoadgenConfig lg =
          make_load(socket, offered, 1, opt.requests_per_client, opt);
      SweepPoint pt;
      pt.offered = offered;
      pt.reports.push_back(service::run_loadgen(lg));
      const auto& rep = pt.reports.back();
      std::fprintf(stderr,
                   "perf_service: offered %2zu -> %.1f qps, p50 %.1f ms, "
                   "p99 %.1f ms\n",
                   offered, rep.qps, rep.p50_ms, rep.p99_ms);
      offered_sweep.push_back(std::move(pt));
    }
    server.request_stop();
    server.wait();
  }

  // Headline figures for the manifest, so `simprof report` gates them.
  obs::ledger().set_quality("service_requests",
                            static_cast<double>(probing.stats.completed));
  obs::ledger().set_quality("service_qps", probing_qps);
  obs::ledger().set_quality("service_p99_ms", probing.report.p99_ms);
  obs::ledger().set_quality("service_p50_ms", probing.report.p50_ms);
  obs::ledger().set_quality("service_admission_level",
                            static_cast<double>(converged_level));
  obs::ledger().set_quality("service_best_fixed_qps", best_qps);
  obs::ledger().set_quality("service_probe_ratio",
                            best_qps > 0.0 ? probing_qps / best_qps : 0.0);

  std::ofstream os(opt.out);
  if (!os) {
    std::fprintf(stderr, "perf_service: cannot open %s\n", opt.out.c_str());
    return 2;
  }
  os << "{\n";
  const char* build_type = std::getenv("SIMPROF_BUILD_TYPE");
  const char* git_sha = std::getenv("SIMPROF_GIT_SHA");
  os << " \"build_type\": \"" << (build_type ? build_type : "unknown")
     << "\",\n";
  os << " \"git_sha\": \"" << (git_sha ? git_sha : "unknown") << "\",\n";
  os << " \"config\": {\"workload\": \"" << kWorkload << "\", \"input\": \""
     << kInput << "\", \"scale\": " << opt.scale
     << ", \"max_level\": " << opt.max_level
     << ", \"requests_per_client\": " << opt.requests_per_client
     << ", \"sweep_clients\": " << sweep_clients
     << ", \"sweep_inflight\": " << sweep_inflight
     << ", \"probe_interval_ms\": " << opt.probe_interval_ms << "},\n";

  os << " \"fixed_sweep\": [\n";
  for (std::size_t i = 0; i < fixed_sweep.size(); ++i) {
    os << "  {\"level\": " << fixed_sweep[i].level
       << ", \"mean_qps\": " << fixed_sweep[i].mean_qps << ", \"passes\": [";
    for (std::size_t p = 0; p < fixed_sweep[i].reports.size(); ++p) {
      if (p > 0) os << ", ";
      write_report(os, fixed_sweep[i].reports[p]);
    }
    os << "]}" << (i + 1 < fixed_sweep.size() ? "," : "") << "\n";
  }
  os << " ],\n";
  os << " \"best_fixed\": {\"level\": " << best_level
     << ", \"qps\": " << best_qps << "},\n";

  os << " \"probing\": {\n  \"converged_level\": " << converged_level
     << ",\n  \"qps\": " << probing.report.qps
     << ",\n  \"tail_qps\": " << probing_tail_qps
     << ",\n  \"converged_fixed_qps\": " << converged_fixed_qps
     << ",\n  \"qps_vs_best_fixed\": "
     << (best_qps > 0.0 ? probing_qps / best_qps : 0.0)
     << ",\n  \"within_10pct\": " << (within_10pct ? "true" : "false")
     << ",\n  \"report\": ";
  write_report(os, probing.report);
  os << ",\n  \"trace\": [\n";
  for (std::size_t i = 0; i < probing.trace.size(); ++i) {
    const auto& t = probing.trace[i];
    os << "   {\"t_ms\": " << t.t_ms << ", \"level\": " << t.level
       << ", \"throughput\": " << t.throughput << ", \"exhausted\": "
       << (t.exhausted ? "true" : "false") << "}"
       << (i + 1 < probing.trace.size() ? "," : "") << "\n";
  }
  os << "  ]\n },\n";

  os << " \"offered_load_sweep\": [\n";
  for (std::size_t i = 0; i < offered_sweep.size(); ++i) {
    os << "  {\"offered\": " << offered_sweep[i].offered << ", \"report\": ";
    write_report(os, offered_sweep[i].reports.front());
    os << "}" << (i + 1 < offered_sweep.size() ? "," : "") << "\n";
  }
  os << " ]\n}\n";
  os.close();

  std::error_code ec;
  fs::remove_all(scratch, ec);

  if (!within_10pct) {
    std::fprintf(stderr,
                 "perf_service: FAIL — probing qps %.1f < 90%% of best "
                 "fixed qps %.1f\n",
                 probing_qps, best_qps);
    return 1;
  }
  std::printf("perf_service: wrote %s (knee level %zu, %.1f qps)\n",
              opt.out.c_str(), best_level, best_qps);
  return 0;
}
