// google-benchmark for checkpointed unit measurement (the SMARTS fast path):
// WorkloadLab::measure_units restoring warm SCKP archives recorded by the
// oracle pass, against the no-checkpoint baseline — the same measurement
// planned cold, which must run detailed simulation from unit 0 up to every
// target (O(run length)) instead of O(selected units).
//
// Run via bench/run_checkpoint.sh to refresh BENCH_checkpoint.json.
// Both paths return bit-identical records (asserted once during setup);
// only wall clock changes with the archive availability.
#include <benchmark/benchmark.h>

#include <cstdio>
#include <cstdlib>
#include <vector>

#include "bench_common.h"
#include "core/lab.h"
#include "core/profile.h"
#include "core/sampling.h"

namespace {

using namespace simprof;

constexpr const char* kWorkload = "grep_sp";
constexpr const char* kInput = "Google";
constexpr std::uint64_t kSelectSeed = 42;

/// Lab whose oracle pass records checkpoint archives (default stride;
/// bench::lab_config turns recording off for the figure benches).
core::WorkloadLab& warm_lab() {
  static core::WorkloadLab lab = [] {
    core::LabConfig cfg = bench::lab_config();
    cfg.checkpoint_stride = core::LabConfig{}.checkpoint_stride;
    return core::WorkloadLab(cfg);
  }();
  return lab;
}

/// Baseline lab: same configuration, but its archive directory is empty and
/// recording is disabled, so measure_units plans cold detailed segments from
/// unit 0 — the path every measurement paid before checkpointing.
core::WorkloadLab& cold_lab() {
  static core::WorkloadLab lab = [] {
    core::LabConfig cfg = bench::lab_config();
    cfg.checkpoint_stride = 0;
    cfg.checkpoint_dir = ".simprof_cache/ckpt_cold_bench";
    return core::WorkloadLab(cfg);
  }();
  return lab;
}

/// Oracle profile for grep_sp; running it through warm_lab() also publishes
/// the checkpoint archives as a side effect (outside any timing loop).
const core::ThreadProfile& oracle() {
  static const core::ThreadProfile p = warm_lab().run(kWorkload, kInput).profile;
  return p;
}

/// SMARTS systematic selection of n units, mapped to unit ids.
std::vector<std::uint64_t> select_units(std::size_t n) {
  const core::SamplePlan plan = core::smarts_sample(oracle(), n, kSelectSeed);
  std::vector<std::uint64_t> units;
  units.reserve(plan.points.size());
  for (const auto& pt : plan.points) units.push_back(pt.unit_index);
  return units;
}

/// One-time contract check before any timing: the warm (restored) path and
/// the cold (re-executed) path must produce bitwise-equal unit records. A
/// speedup over wrong numbers would be meaningless.
void assert_paths_agree() {
  static const bool checked = [] {
    const auto units = select_units(5);
    const auto warm = warm_lab().measure_units(kWorkload, kInput, units);
    const auto cold = cold_lab().measure_units(kWorkload, kInput, units);
    if (!warm.used_checkpoints || warm.fallback || cold.used_checkpoints) {
      std::fprintf(stderr,
                   "perf_checkpoint: setup paths misconfigured (warm "
                   "restored=%zu fallback=%d, cold restored=%zu)\n",
                   warm.checkpoints_restored, warm.fallback ? 1 : 0,
                   cold.checkpoints_restored);
      std::exit(1);
    }
    if (warm.records.size() != cold.records.size()) {
      std::fprintf(stderr, "perf_checkpoint: record count mismatch\n");
      std::exit(1);
    }
    for (std::size_t i = 0; i < warm.records.size(); ++i) {
      const auto& a = warm.records[i].counters;
      const auto& b = cold.records[i].counters;
      if (warm.records[i].unit_id != cold.records[i].unit_id ||
          a.instructions != b.instructions || a.cycles != b.cycles ||
          a.line_touches != b.line_touches || a.l1_misses != b.l1_misses ||
          a.l2_misses != b.l2_misses || a.llc_misses != b.llc_misses ||
          a.migrations != b.migrations) {
        std::fprintf(stderr,
                     "perf_checkpoint: warm/cold records diverge at unit "
                     "%llu — checkpoint restore is NOT bit-exact\n",
                     static_cast<unsigned long long>(warm.records[i].unit_id));
        std::exit(1);
      }
    }
    return true;
  }();
  (void)checked;
}

// --- The speedup curve: measuring n selected units, warm vs cold.

void BM_MeasureCheckpointed(benchmark::State& state) {
  assert_paths_agree();
  const auto units = select_units(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto m = warm_lab().measure_units(kWorkload, kInput, units);
    benchmark::DoNotOptimize(m.records.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(units.size()));
}
BENCHMARK(BM_MeasureCheckpointed)->Arg(1)->Arg(2)->Arg(5)->Arg(10)
    ->Unit(benchmark::kMillisecond);

void BM_MeasureNoCheckpoint(benchmark::State& state) {
  assert_paths_agree();
  const auto units = select_units(static_cast<std::size_t>(state.range(0)));
  for (auto _ : state) {
    auto m = cold_lab().measure_units(kWorkload, kInput, units);
    benchmark::DoNotOptimize(m.records.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(units.size()));
}
BENCHMARK(BM_MeasureNoCheckpoint)->Arg(1)->Arg(2)->Arg(5)->Arg(10)
    ->Unit(benchmark::kMillisecond);

// --- Context: the full oracle pass (profiling every unit with the disk
// cache bypassed) — what SMARTS-style sampling avoids re-paying entirely.

void BM_OraclePassFull(benchmark::State& state) {
  core::LabConfig cfg = bench::lab_config();
  cfg.use_cache = false;  // force a real simulation per iteration
  core::WorkloadLab lab(cfg);
  for (auto _ : state) {
    auto run = lab.run(kWorkload, kInput);
    benchmark::DoNotOptimize(run.profile.units.data());
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_OraclePassFull)->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main (see perf_core.cc): ObsSession strips the obs flags before
// google-benchmark parses the remainder.
int main(int argc, char** argv) {
  simprof::bench::ObsSession obs_session(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
