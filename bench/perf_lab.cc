// google-benchmark for the end-to-end lab pipeline: batched profile
// acquisition (WorkloadLab::run_batch), sparse feature extraction, blocked
// single-pass feature selection, and bulk unit classification — against the
// seed-era serial baseline (dense feature matrix, per-column copy + two-pass
// Pearson, per-unit vectorize-and-scan classification).
//
// Run via bench/run_lab_pipeline.sh to refresh BENCH_lab_pipeline.json.
// All parallel variants are bit-identical to the serial path; only wall
// clock changes with the thread count.
#include <benchmark/benchmark.h>

#include <cmath>
#include <limits>
#include <span>
#include <vector>

#include "bench_common.h"
#include "core/phase.h"
#include "core/profile.h"
#include "core/sensitivity.h"
#include "stats/descriptive.h"
#include "stats/feature_select.h"
#include "stats/matrix.h"
#include "stats/sparse.h"
#include "support/rng.h"

namespace {

using namespace simprof;

/// A profile wide enough that the full dense feature matrix is the cost
/// center: many distinct methods, few touched per unit (the real shape —
/// Table I configs intern hundreds of methods, a unit's stack sees dozens).
core::ThreadProfile wide_profile(std::size_t units, std::size_t methods,
                                 std::size_t per_unit, std::uint64_t seed) {
  core::ThreadProfile p;
  for (std::size_t m = 0; m < methods; ++m) {
    p.method_names.push_back("m" + std::to_string(m));
    p.method_kinds.push_back(jvm::OpKind::kMap);
  }
  Rng rng(seed);
  for (std::size_t i = 0; i < units; ++i) {
    core::UnitRecord u;
    u.unit_id = i;
    u.counters.instructions = 1'000'000;
    u.counters.cycles =
        1'000'000 + static_cast<std::uint64_t>(rng.next_below(2'000'000));
    for (std::size_t j = 0; j < per_unit; ++j) {
      u.methods.push_back(
          static_cast<jvm::MethodId>((i * 17 + j * 131) % methods));
      u.counts.push_back(static_cast<std::uint32_t>(1 + rng.next_below(20)));
    }
    p.units.push_back(std::move(u));
  }
  return p;
}

constexpr std::size_t kUnits = 1500;
constexpr std::size_t kMethods = 1200;
constexpr std::size_t kPerUnit = 16;
constexpr std::size_t kTopK = 100;

std::vector<double> ipc_of(const core::ThreadProfile& p) {
  std::vector<double> ipc(p.num_units());
  for (std::size_t u = 0; u < p.num_units(); ++u) ipc[u] = p.units[u].ipc();
  return ipc;
}

/// Seed-era feature selection: copy each column out of the dense matrix and
/// run the two-pass centered Pearson, then convert r → F.
std::vector<double> naive_f_regression(const stats::Matrix& x,
                                       std::span<const double> y) {
  const std::size_t n = x.rows();
  std::vector<double> out(x.cols(), 0.0);
  std::vector<double> col(n);
  for (std::size_t f = 0; f < x.cols(); ++f) {
    for (std::size_t i = 0; i < n; ++i) col[i] = x.at(i, f);
    const double r = stats::pearson(col, y);
    if (!std::isfinite(r) || r == 0.0) continue;
    const double r2 = std::min(r * r, 1.0 - 1e-12);
    out[f] = r2 / (1.0 - r2) * static_cast<double>(n - 2);
  }
  return out;
}

/// Seed-era classification: vectorize one unit at a time (rebuilding the
/// name map per unit) and scan the centers.
std::vector<std::size_t> naive_classify(const core::PhaseModel& model,
                                        const core::ThreadProfile& ref) {
  std::vector<std::size_t> labels(ref.num_units(), 0);
  for (std::size_t u = 0; u < ref.num_units(); ++u) {
    const auto v = core::vectorize_unit(model, ref, u);
    double best = std::numeric_limits<double>::infinity();
    for (std::size_t h = 0; h < model.k; ++h) {
      const double d2 = stats::squared_distance(v, model.centers.row(h));
      if (d2 < best) {
        best = d2;
        labels[u] = h;
      }
    }
  }
  return labels;
}

const core::ThreadProfile& train_profile() {
  static const core::ThreadProfile p = wide_profile(kUnits, kMethods,
                                                    kPerUnit, 11);
  return p;
}

const core::ThreadProfile& reference_profile() {
  static const core::ThreadProfile p = wide_profile(kUnits, kMethods,
                                                    kPerUnit, 23);
  return p;
}

const core::PhaseModel& trained_model() {
  static const core::PhaseModel m = core::form_phases(train_profile());
  return m;
}

// --- End-to-end feature pipeline: vectorize → select → densify → classify.

void BM_PipelineNaive(benchmark::State& state) {
  const auto& train = train_profile();
  const auto& ref = reference_profile();
  const auto& model = trained_model();
  const auto ipc = ipc_of(train);
  for (auto _ : state) {
    stats::Matrix dense = core::build_feature_matrix(train);
    const auto scores = naive_f_regression(dense, ipc);
    const auto selected = stats::top_k_indices(scores, kTopK);
    stats::Matrix features(dense.rows(), selected.size());
    for (std::size_t i = 0; i < dense.rows(); ++i) {
      for (std::size_t j = 0; j < selected.size(); ++j) {
        features.at(i, j) = dense.at(i, selected[j]);
      }
    }
    features.normalize_rows_l1();
    const auto labels = naive_classify(model, ref);
    benchmark::DoNotOptimize(features.flat().data());
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(state.iterations() * kUnits);
}
BENCHMARK(BM_PipelineNaive)->Unit(benchmark::kMillisecond);

void BM_PipelineBatch(benchmark::State& state) {
  const auto& train = train_profile();
  const auto& ref = reference_profile();
  const auto& model = trained_model();
  const auto ipc = ipc_of(train);
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    stats::SparseMatrix sparse = core::build_sparse_feature_matrix(train);
    const auto scores = stats::f_regression(sparse, ipc, threads);
    const auto selected = stats::top_k_indices(scores, kTopK);
    stats::Matrix features = sparse.select_columns_dense(selected, threads);
    features.normalize_rows_l1();
    const auto labels = core::classify_units(model, ref, threads);
    benchmark::DoNotOptimize(features.flat().data());
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(state.iterations() * kUnits);
}
BENCHMARK(BM_PipelineBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// --- Stage microbenches: where the pipeline win comes from.

void BM_FeatureBuildDense(benchmark::State& state) {
  const auto& train = train_profile();
  for (auto _ : state) {
    auto m = core::build_feature_matrix(train);
    benchmark::DoNotOptimize(m.flat().data());
  }
}
BENCHMARK(BM_FeatureBuildDense)->Unit(benchmark::kMillisecond);

void BM_FeatureBuildSparse(benchmark::State& state) {
  const auto& train = train_profile();
  for (auto _ : state) {
    auto m = core::build_sparse_feature_matrix(train);
    benchmark::DoNotOptimize(m.rows_filled());
  }
}
BENCHMARK(BM_FeatureBuildSparse)->Unit(benchmark::kMillisecond);

void BM_FRegressionNaive(benchmark::State& state) {
  const auto& train = train_profile();
  const stats::Matrix dense = core::build_feature_matrix(train);
  const auto ipc = ipc_of(train);
  for (auto _ : state) {
    auto scores = naive_f_regression(dense, ipc);
    benchmark::DoNotOptimize(scores.data());
  }
}
BENCHMARK(BM_FRegressionNaive)->Unit(benchmark::kMillisecond);

void BM_FRegressionDense(benchmark::State& state) {
  const auto& train = train_profile();
  const stats::Matrix dense = core::build_feature_matrix(train);
  const auto ipc = ipc_of(train);
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto scores = stats::f_regression(dense, ipc, threads);
    benchmark::DoNotOptimize(scores.data());
  }
}
BENCHMARK(BM_FRegressionDense)->Arg(1)->Arg(8)->Unit(benchmark::kMillisecond);

void BM_FRegressionSparse(benchmark::State& state) {
  const auto& train = train_profile();
  const stats::SparseMatrix sparse = core::build_sparse_feature_matrix(train);
  const auto ipc = ipc_of(train);
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto scores = stats::f_regression(sparse, ipc, threads);
    benchmark::DoNotOptimize(scores.data());
  }
}
BENCHMARK(BM_FRegressionSparse)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

void BM_ClassifyNaive(benchmark::State& state) {
  const auto& ref = reference_profile();
  const auto& model = trained_model();
  for (auto _ : state) {
    auto labels = naive_classify(model, ref);
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(state.iterations() * kUnits);
}
BENCHMARK(BM_ClassifyNaive)->Unit(benchmark::kMillisecond);

void BM_ClassifyBatch(benchmark::State& state) {
  const auto& ref = reference_profile();
  const auto& model = trained_model();
  const auto threads = static_cast<std::size_t>(state.range(0));
  for (auto _ : state) {
    auto labels = core::classify_units(model, ref, threads);
    benchmark::DoNotOptimize(labels.data());
  }
  state.SetItemsProcessed(state.iterations() * kUnits);
}
BENCHMARK(BM_ClassifyBatch)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

// --- Batched lab acquisition: decode a warm cache through run_batch. The
// cache is populated outside the timing loop (the oracle passes run once
// per process, then hit disk).

void BM_LabBatchDecode(benchmark::State& state) {
  core::LabConfig cfg = bench::lab_config();
  cfg.threads = static_cast<std::size_t>(state.range(0));
  core::WorkloadLab lab(cfg);
  std::vector<core::BatchItem> items;
  for (const char* name : {"wc_hp", "wc_sp", "grep_hp", "grep_sp"}) {
    items.push_back({name, "Google", {}});
  }
  lab.run_batch(items);  // warm the on-disk cache before timing
  for (auto _ : state) {
    auto runs = lab.run_batch(items);
    benchmark::DoNotOptimize(runs.data());
  }
  state.SetItemsProcessed(state.iterations() *
                          static_cast<std::int64_t>(items.size()));
}
BENCHMARK(BM_LabBatchDecode)->Arg(1)->Arg(2)->Arg(4)->Arg(8)
    ->Unit(benchmark::kMillisecond);

}  // namespace

// Custom main (see perf_core.cc): ObsSession strips the obs flags before
// google-benchmark parses the remainder.
int main(int argc, char** argv) {
  simprof::bench::ObsSession obs_session(argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) return 1;
  benchmark::RunSpecifiedBenchmarks();
  benchmark::Shutdown();
  return 0;
}
