// Ablation: empirical confidence-interval calibration. The paper's Figure 8
// rests on the stratified CI (Eqs. 2–5) being honest; here we draw many
// independent SimProf samples per configuration and count how often the
// 99.7% interval covers the oracle CPI. (Normality is an approximation at
// n = 20, so coverage slightly below nominal on skewed configs is expected
// — the point is that it is close, not that it is exact.)
#include <iostream>

#include "bench_common.h"
#include "support/table.h"

int main(int argc, char** argv) {
  simprof::bench::ObsSession obs_session(argc, argv);
  using namespace simprof;
  core::WorkloadLab lab(bench::lab_config());
  constexpr int kDraws = 60;
  constexpr std::size_t kSample = 20;

  std::cout << "Ablation — empirical 99.7% CI coverage over " << kDraws
            << " independent samples (n = " << kSample << ")\n";
  Table table({"config", "coverage", "mean_margin", "oracle_cpi"});
  double total_cov = 0.0;
  for (const auto& name : bench::config_names()) {
    const auto run = lab.run(name);
    const auto& prof = run.profile;
    const auto model = core::form_phases(prof);
    const double oracle = prof.oracle_cpi();
    int covered = 0;
    double margin = 0.0;
    for (int s = 0; s < kDraws; ++s) {
      const auto plan = core::simprof_sample(prof, model, kSample, 7000 + s);
      if (oracle >= plan.ci.low() && oracle <= plan.ci.high()) ++covered;
      margin += plan.ci.margin / kDraws;
    }
    const double cov = static_cast<double>(covered) / kDraws;
    total_cov += cov / bench::config_names().size();
    table.row({name, Table::pct(cov), Table::num(margin, 4),
               Table::num(oracle, 3)});
  }
  table.row({"average", Table::pct(total_cov), "", ""});
  table.print(std::cout);
  return 0;
}
