// Figure 15: WordCount on Hadoop — CPI of every sampling unit with its
// phase id, units sorted by phase.
//
// Expected shape (paper): a fast low-variance map phase (TokenizerMapper,
// good locality), a combine phase (NewCombinerRunner) with higher variation,
// and a high-CoV quicksort phase from the recursive map-side sort.
#include "fig_trace_common.h"

int main(int argc, char** argv) {
  simprof::bench::ObsSession obs_session(argc, argv);
  simprof::bench::print_phase_trace("wc_hp", "Figure 15");
  return 0;
}
