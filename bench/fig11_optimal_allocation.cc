// Figure 11: how optimal allocation distributes the simulation points of
// cc_sp across phases (sorted by phase weight), alongside each phase's CoV
// of CPI and weight — plus a proportional-allocation ablation column.
//
// Expected shape (paper): the sample-size ratio follows N_h·σ_h, so a phase
// with high weight *and* high CPI variation (the aggregateUsingIndex reduce)
// receives disproportionately many points, while a heavy but uniform phase
// (mapPartitionsWithIndex-style sequential conversion) receives few.
#include <algorithm>
#include <iostream>
#include <numeric>

#include "bench_common.h"
#include "stats/stratified.h"
#include "support/table.h"

int main(int argc, char** argv) {
  simprof::bench::ObsSession obs_session(argc, argv);
  using namespace simprof;
  core::WorkloadLab lab(bench::lab_config());
  const auto run = lab.run_batch({core::BatchItem{"cc_sp", "Google", {}}}).front();
  const auto model = core::form_phases(run.profile);

  const std::size_t n = 40;  // simulation points to distribute
  const auto strata = core::strata_of(model);
  const auto optimal = stats::optimal_allocation(strata, n);
  const auto proportional = stats::proportional_allocation(strata, n);

  // Sort phases by weight, descending (the paper's x-axis order).
  std::vector<std::size_t> order(model.k);
  std::iota(order.begin(), order.end(), std::size_t{0});
  std::sort(order.begin(), order.end(), [&](std::size_t a, std::size_t b) {
    return model.phases[a].weight > model.phases[b].weight;
  });

  std::cout << "Figure 11 — cc_sp simulation-point allocation (n = " << n
            << ", phases sorted by weight)\n";
  Table table({"phase", "weight", "cov_cpi", "sample_ratio",
               "proportional_ratio", "dominant_method"});
  for (std::size_t rank = 0; rank < order.size(); ++rank) {
    const std::size_t h = order[rank];
    // Most-weighted non-framework feature of the phase center.
    std::size_t best_f = 0;
    double best_w = -1.0;
    for (std::size_t f = 0; f < model.feature_names.size(); ++f) {
      if (model.feature_kinds[f] == jvm::OpKind::kFramework) continue;
      if (model.centers.at(h, f) > best_w) {
        best_w = model.centers.at(h, f);
        best_f = f;
      }
    }
    const std::string method = model.feature_names.empty()
                                   ? "-"
                                   : model.feature_names[best_f];
    table.row({"P" + std::to_string(rank),
               Table::pct(model.phases[h].weight),
               Table::num(model.phases[h].cov),
               Table::pct(static_cast<double>(optimal[h]) / n),
               Table::pct(static_cast<double>(proportional[h]) / n),
               method.substr(method.rfind('.') == std::string::npos
                                 ? 0
                                 : method.rfind('.', method.rfind('.') - 1) +
                                       1)});
  }
  table.print(std::cout);

  const double se_opt = stats::stratified_standard_error(strata, optimal);
  const double se_prop =
      stats::stratified_standard_error(strata, proportional);
  std::cout << "ablation: SE(optimal) = " << Table::num(se_opt, 4)
            << "  SE(proportional) = " << Table::num(se_prop, 4)
            << "  (optimal <= proportional expected)\n";
  return 0;
}
