// Ablation: feature selection (Section III-B). Sweeps the top-K cap and
// disables the F-score floor to show why the paper selects the top 100
// IPC-correlated methods: too few features under-split phases; keeping
// insignificant features manufactures spurious phases from snapshot
// quantization noise.
#include <iostream>

#include "bench_common.h"
#include "support/table.h"

int main(int argc, char** argv) {
  simprof::bench::ObsSession obs_session(argc, argv);
  using namespace simprof;
  core::WorkloadLab lab(bench::lab_config());

  struct Variant {
    const char* label;
    core::PhaseFormationConfig cfg;
  };
  std::vector<Variant> variants;
  {
    core::PhaseFormationConfig base;
    Variant v{"K=1", base};
    v.cfg.top_k_features = 1;
    variants.push_back(v);
    v = {"K=3", base};
    v.cfg.top_k_features = 3;
    variants.push_back(v);
    v = {"K=100 (paper)", base};
    variants.push_back(v);
    v = {"no F-floor", base};
    v.cfg.min_f_score = 0.0;
    variants.push_back(v);
    v = {"no merge", base};
    v.cfg.merge_threshold = 0.0;
    variants.push_back(v);
  }

  std::cout << "Ablation — feature selection / phase refinement "
               "(phases | SimProf error at n=20)\n";
  std::vector<std::string> header{"config"};
  for (const auto& v : variants) header.push_back(v.label);
  Table table(header);

  for (const auto& name : bench::config_names()) {
    const auto run = lab.run(name);
    const auto& prof = run.profile;
    std::vector<std::string> row{name};
    for (const auto& v : variants) {
      const auto model = core::form_phases(prof, v.cfg);
      double err = 0.0;
      for (int s = 0; s < 3; ++s) {
        err += core::relative_error(
            core::simprof_sample(prof, model, bench::kFig7SampleSize,
                                 9000 + s),
            prof);
      }
      row.push_back(std::to_string(model.k) + " | " + Table::pct(err / 3));
    }
    table.row(std::move(row));
  }
  table.print(std::cout);
  return 0;
}
