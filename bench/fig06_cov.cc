// Figure 6: population / weighted / maximum coefficient of variation of CPI
// per benchmark configuration — the phase-homogeneity analysis.
//
// Expected shape (paper): the weighted CoV is always below the population
// CoV (phase formation separates performance levels), while the maximum CoV
// shows that some phases remain non-homogeneous — the motivation for
// stratified sampling instead of one point per phase.
#include <iostream>

#include "bench_common.h"
#include "support/table.h"

int main(int argc, char** argv) {
  simprof::bench::ObsSession obs_session(argc, argv);
  using namespace simprof;
  core::WorkloadLab lab(bench::lab_config());

  std::cout << "Figure 6 — Coefficient of variation of CPIs\n";
  Table table({"config", "population", "weighted", "maximum", "phases"});
  double sum_pop = 0.0, sum_w = 0.0, sum_max = 0.0;
  const auto runs = bench::run_configs(lab, bench::config_names());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& name = bench::config_names()[i];
    const auto& run = runs[i];
    const auto model = core::form_phases(run.profile);
    const auto cov = core::cov_summary(run.profile, model);
    table.row({name, Table::num(cov.population), Table::num(cov.weighted),
               Table::num(cov.maximum), std::to_string(model.k)});
    sum_pop += cov.population;
    sum_w += cov.weighted;
    sum_max += cov.maximum;
  }
  const double n = static_cast<double>(bench::config_names().size());
  table.row({"average", Table::num(sum_pop / n), Table::num(sum_w / n),
             Table::num(sum_max / n), ""});
  table.print(std::cout);
  return 0;
}
