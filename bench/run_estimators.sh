#!/bin/sh
# Refresh BENCH_estimators.json — the feature-mode × estimator accuracy grid.
#
# Runs perf_estimators: mean CPI sampling error at the Fig. 7 sample size
# for every cell of {freq, mav, combined} features × {Neyman, two-phase}
# estimators over the twelve paper configurations, seed-averaged. The bench
# exits non-zero unless the combined feature mode beats freq (same
# estimator) on at least one configuration — the MAV payoff criterion.
#
# The manifest carries sampling_error_frac (freq/Neyman baseline),
# mav_sampling_error_frac (combined/Neyman) and two_phase_ci_rel_width
# (combined/two-phase) as quality figures, so `simprof report` gates
# regressions against previous runs. The fold step appends the sample.*
# counter snapshot under "simprof_metrics" and stamps build provenance.
#
# Usage: bench/run_estimators.sh [perf_estimators flags]
set -e
cd "$(dirname "$0")/.."
. bench/bench_prelude.sh
bench_build perf_estimators

metrics_tmp=$(mktemp)
trap 'rm -f "$metrics_tmp"' EXIT

"$BENCH_BUILD_DIR"/bench/perf_estimators \
  --log-level warn \
  --metrics-out "$metrics_tmp" \
  --manifest-out MANIFEST_estimators.json \
  --out BENCH_estimators.json \
  "$@"

python3 - "$metrics_tmp" <<'EOF'
import json, os, sys

with open("BENCH_estimators.json") as f:
    bench = json.load(f)
with open(sys.argv[1]) as f:
    metrics = json.load(f)

counters = metrics.get("counters", {})
fold = {
    "sample": {k.split(".", 1)[1]: v for k, v in counters.items()
               if k.startswith("sample.")},
}

bench["build_type"] = os.environ.get("SIMPROF_BUILD_TYPE", "unknown")
bench["git_sha"] = os.environ.get("SIMPROF_GIT_SHA", "unknown")
bench["simprof_metrics"] = fold
with open("BENCH_estimators.json", "w") as f:
    json.dump(bench, f, indent=1)
    f.write("\n")

avg = bench["averages"]
print("folded metrics snapshot into BENCH_estimators.json")
print("avg error  freq|neyman:", round(avg["freq|neyman"], 4),
      " combined|neyman:", round(avg["combined|neyman"], 4),
      " combined|two-phase:", round(avg["combined|two-phase"], 4))
print("combined_beats_freq_cells:", bench["combined_beats_freq_cells"])
EOF
