// Estimator × feature-mode accuracy grid (run via bench/run_estimators.sh
// → BENCH_estimators.json).
//
// The deliverable of the MAV + two-phase subsystem: CPI sampling error at
// the Fig. 7 sample size for every cell of {freq, mav, combined} features ×
// {Neyman, two-phase} estimators, across the paper's twelve workload
// configurations. Like perf_service this is a custom sweep driver, not a
// google-benchmark suite — the quantity under test is estimation accuracy,
// not wall time, so each cell is the mean relative error over
// kErrorRepetitions seeds (single draws are dominated by luck).
//
// Acceptance (exit non-zero on failure): MAV-informed phases must pay off —
// the combined feature mode beats freq on mean sampling error, under the
// same estimator, on at least one configuration.
//
// Flags (after the common obs flags): --out FILE.
#include <array>
#include <cstring>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "bench_common.h"
#include "features/feature_mode.h"
#include "support/table.h"

namespace {

using namespace simprof;

struct Cell {
  double error = 0.0;         ///< mean relative CPI error over seeds
  double ci_rel_width = 0.0;  ///< mean CI width / estimate (0 if estimate 0)
};

constexpr std::size_t kModes = 3;
constexpr std::size_t kEstimators = 2;

const char* estimator_name(std::size_t e) {
  return e == 0 ? "neyman" : "two-phase";
}

}  // namespace

int main(int argc, char** argv) {
  bench::ObsSession obs_session(argc, argv);
  std::string out = "BENCH_estimators.json";
  for (int i = 1; i + 1 < argc; ++i) {
    if (std::strcmp(argv[i], "--out") == 0) out = argv[i + 1];
  }

  core::WorkloadLab lab(bench::lab_config());
  const auto& names = bench::config_names();
  const auto runs = bench::run_configs(lab, names);

  std::cout << "Estimator grid — CPI sampling error (sample size "
            << bench::kFig7SampleSize << ", " << bench::kErrorRepetitions
            << " seeds)\n";
  Table table({"config", "freq|ney", "freq|2p", "mav|ney", "mav|2p",
               "comb|ney", "comb|2p"});

  // grid[config][mode][estimator]
  std::vector<std::array<std::array<Cell, kEstimators>, kModes>> grid(
      runs.size());
  double sums[kModes][kEstimators] = {};
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& prof = runs[i].profile;
    std::vector<std::string> row{names[i]};
    for (std::size_t m = 0; m < kModes; ++m) {
      core::PhaseFormationConfig pcfg;
      pcfg.features = static_cast<features::FeatureMode>(m);
      const auto model = core::form_phases(prof, pcfg);
      for (std::size_t e = 0; e < kEstimators; ++e) {
        Cell cell;
        for (int s = 0; s < bench::kErrorRepetitions; ++s) {
          const core::SamplePlan plan =
              e == 0 ? core::simprof_sample(prof, model,
                                            bench::kFig7SampleSize, 1000 + s)
                     : core::two_phase_sample(prof, model,
                                              bench::kFig7SampleSize,
                                              1000 + s);
          cell.error += core::relative_error(plan, prof);
          if (plan.estimated_cpi > 0.0) {
            cell.ci_rel_width += 2.0 * plan.ci.margin / plan.estimated_cpi;
          }
        }
        cell.error /= bench::kErrorRepetitions;
        cell.ci_rel_width /= bench::kErrorRepetitions;
        grid[i][m][e] = cell;
        sums[m][e] += cell.error;
      }
    }
    for (std::size_t m = 0; m < kModes; ++m) {
      for (std::size_t e = 0; e < kEstimators; ++e) {
        row.push_back(Table::pct(grid[i][m][e].error));
      }
    }
    table.row(std::move(row));
  }
  const double n = static_cast<double>(runs.size());
  table.row({"average", Table::pct(sums[0][0] / n), Table::pct(sums[0][1] / n),
             Table::pct(sums[1][0] / n), Table::pct(sums[1][1] / n),
             Table::pct(sums[2][0] / n), Table::pct(sums[2][1] / n)});
  table.print(std::cout);

  // Acceptance: combined must beat freq under the same estimator somewhere.
  std::size_t combined_beats_freq = 0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    for (std::size_t e = 0; e < kEstimators; ++e) {
      if (grid[i][2][e].error < grid[i][0][e].error) ++combined_beats_freq;
    }
  }

  // Manifest quality figures for the `simprof report` regression gate:
  // the historical freq/Neyman error, the MAV-informed combined error, and
  // the two-phase CI width (all lower-is-better in the gate's table).
  obs::ledger().set_config("sample_size",
                           std::to_string(bench::kFig7SampleSize));
  obs::ledger().set_quality("sampling_error_frac", sums[0][0] / n);
  obs::ledger().set_quality("mav_sampling_error_frac", sums[2][0] / n);
  double tp_width = 0.0;
  for (std::size_t i = 0; i < runs.size(); ++i) {
    tp_width += grid[i][2][1].ci_rel_width;
  }
  obs::ledger().set_quality("two_phase_ci_rel_width", tp_width / n);

  std::ofstream os(out);
  os << "{\n \"sample_size\": " << bench::kFig7SampleSize
     << ",\n \"repetitions\": " << bench::kErrorRepetitions
     << ",\n \"configs\": [\n";
  for (std::size_t i = 0; i < runs.size(); ++i) {
    os << "  {\"config\": \"" << names[i] << "\", \"cells\": [";
    bool first = true;
    for (std::size_t m = 0; m < kModes; ++m) {
      for (std::size_t e = 0; e < kEstimators; ++e) {
        if (!first) os << ", ";
        first = false;
        os << "{\"features\": \""
           << features::to_string(static_cast<features::FeatureMode>(m))
           << "\", \"estimator\": \"" << estimator_name(e)
           << "\", \"error\": " << grid[i][m][e].error
           << ", \"ci_rel_width\": " << grid[i][m][e].ci_rel_width << "}";
      }
    }
    os << "]}" << (i + 1 < runs.size() ? "," : "") << "\n";
  }
  os << " ],\n \"averages\": {";
  {
    bool first = true;
    for (std::size_t m = 0; m < kModes; ++m) {
      for (std::size_t e = 0; e < kEstimators; ++e) {
        if (!first) os << ", ";
        first = false;
        os << "\"" << features::to_string(static_cast<features::FeatureMode>(m))
           << "|" << estimator_name(e) << "\": " << sums[m][e] / n;
      }
    }
  }
  os << "},\n \"combined_beats_freq_cells\": " << combined_beats_freq
     << "\n}\n";
  os.close();

  std::cout << "combined beats freq (same estimator) on "
            << combined_beats_freq << "/" << runs.size() * kEstimators
            << " cells\n";
  if (combined_beats_freq == 0) {
    std::cerr << "FAIL: combined features never beat freq — MAV signal "
                 "missing from the grid\n";
    return 1;
  }
  return 0;
}
