// Figure 12: percentage of simulation points that fall in input-sensitive
// phases for the graph workloads — i.e. the sample size needed per
// *reference* input after the input-sensitivity test (Table II inputs:
// Google trains, the other seven are references).
//
// Expected shape (paper): 55–80% of the points stay (the reduction is 20–45%,
// 33.7% on average) — a large fraction of phases do not change performance
// with the input and can be skipped when exploring new inputs.
#include <iostream>

#include "bench_common.h"
#include "core/sensitivity.h"
#include "data/catalog.h"
#include "support/table.h"

int main(int argc, char** argv) {
  simprof::bench::ObsSession obs_session(argc, argv);
  using namespace simprof;
  core::WorkloadLab lab(bench::lab_config());
  const auto catalog = data::snap_catalog();

  std::cout << "Figure 12 — % of simulation points in input-sensitive "
               "phases (training input: Google)\n";
  Table table({"config", "sensitive_points", "reduction"});
  double total_reduction = 0.0;
  // One batch covers every (config, input) pair of the study: all cache
  // misses simulate concurrently, and the per-config loop below just
  // consumes the prefetched runs in order.
  std::vector<core::BatchItem> items;
  for (const auto& name : bench::graph_config_names()) {
    items.push_back({name, "Google", {}});
    for (const auto& entry : catalog) {
      if (!entry.training) items.push_back({name, entry.name, {}});
    }
  }
  auto runs = lab.run_batch(items);
  std::size_t next = 0;
  for (const auto& name : bench::graph_config_names()) {
    const auto train = std::move(runs[next++]);
    const auto model = core::form_phases(train.profile);

    std::vector<core::ThreadProfile> ref_profiles;
    std::vector<std::string> ref_names;
    for (const auto& entry : catalog) {
      if (entry.training) continue;
      ref_profiles.push_back(std::move(runs[next++].profile));
      ref_names.push_back(entry.name);
    }
    std::vector<const core::ThreadProfile*> refs;
    for (const auto& p : ref_profiles) refs.push_back(&p);

    const auto report = core::input_sensitivity_test(model, refs, ref_names);
    const auto plan =
        core::simprof_sample(train.profile, model,
                             bench::kFig7SampleSize, 4242);
    const double frac = report.sensitive_point_fraction(plan);
    table.row({name, Table::pct(frac), Table::pct(1.0 - frac)});
    total_reduction += 1.0 - frac;
  }
  const double n = static_cast<double>(bench::graph_config_names().size());
  table.row({"average", "", Table::pct(total_reduction / n)});
  table.print(std::cout);
  return 0;
}
