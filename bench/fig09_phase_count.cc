// Figure 9: number of phases per configuration.
//
// Expected shape (paper): Spark-based workloads span a much wider range
// (grep_sp collapses to 1; cc_sp reaches the high end because GraphX uses
// many more operations), while Hadoop workloads cluster in a narrow band —
// only one or two map/reduce operations are defined per job.
#include <iostream>

#include "bench_common.h"
#include "support/table.h"

int main(int argc, char** argv) {
  simprof::bench::ObsSession obs_session(argc, argv);
  using namespace simprof;
  core::WorkloadLab lab(bench::lab_config());

  std::cout << "Figure 9 — number of phases\n";
  Table table({"config", "phases", "units", "best_silhouette"});
  std::size_t spark_min = 99, spark_max = 0, hp_min = 99, hp_max = 0;
  const auto runs = bench::run_configs(lab, bench::config_names());
  for (std::size_t i = 0; i < runs.size(); ++i) {
    const auto& name = bench::config_names()[i];
    const auto& run = runs[i];
    const auto model = core::form_phases(run.profile);
    double best = 0.0;
    for (double s : model.silhouette_scores) best = std::max(best, s);
    table.row({name, std::to_string(model.k),
               std::to_string(run.profile.num_units()), Table::num(best, 2)});
    const bool spark = name.ends_with("_sp");
    auto& mn = spark ? spark_min : hp_min;
    auto& mx = spark ? spark_max : hp_max;
    mn = std::min(mn, model.k);
    mx = std::max(mx, model.k);
  }
  table.print(std::cout);
  std::cout << "spark range: [" << spark_min << ", " << spark_max
            << "]  hadoop range: [" << hp_min << ", " << hp_max << "]\n";
  return 0;
}
