#!/bin/sh
# Refresh BENCH_lab_pipeline.json — the end-to-end lab-pipeline trajectory.
#
# Runs the perf_lab benchmarks (batched lab acquisition, sparse feature
# extraction, single-pass blocked feature selection, bulk classification)
# with their 1/2/4/8 thread sweeps against the seed-era serial baselines
# (BM_PipelineNaive / BM_FRegressionNaive / BM_ClassifyNaive, compiled from
# the same sources), writes google-benchmark JSON to the repo root, then
# folds the lab.batch_* metrics snapshot and the naive-vs-batch speedup into
# the same file under a "simprof_metrics" key.
#
# Seed-PR baseline recorded as context: the seed pipeline is the dense
# feature matrix + per-column-copy two-pass Pearson + per-unit classify,
# i.e. exactly what BM_PipelineNaive measures on this host. The CI host has
# a single core, so thread sweeps measure scheduling overhead, not speedup;
# the headline ≥2× comes from the algorithmic restructure and holds at
# every thread count.
#
# Usage: bench/run_lab_pipeline.sh [extra google-benchmark flags]
set -e
cd "$(dirname "$0")/.."
. bench/bench_prelude.sh
bench_build perf_lab

metrics_tmp=$(mktemp)
trap 'rm -f "$metrics_tmp"' EXIT

"$BENCH_BUILD_DIR"/bench/perf_lab \
  --metrics-out "$metrics_tmp" \
  --manifest-out MANIFEST_lab_pipeline.json \
  --benchmark_out=BENCH_lab_pipeline.json \
  --benchmark_out_format=json \
  --benchmark_context=seed_pipeline=dense_column_copy_pearson_serial \
  --benchmark_context=host_cores="$(nproc)" \
  --benchmark_context=build_type="$SIMPROF_BUILD_TYPE" \
  --benchmark_context=git_sha="$SIMPROF_GIT_SHA" \
  "$@"

python3 - "$metrics_tmp" <<'EOF'
import json, os, sys

with open("BENCH_lab_pipeline.json") as f:
    bench = json.load(f)
with open(sys.argv[1]) as f:
    metrics = json.load(f)

counters = metrics.get("counters", {})
lab = {k.split(".", 1)[1]: v for k, v in counters.items()
       if k.startswith("lab.")}
pool = {k.split(".", 1)[1]: v for k, v in counters.items()
        if k.startswith("pool.")}

times = {b["name"]: b["real_time"] for b in bench.get("benchmarks", [])
         if b.get("run_type") != "aggregate"}
speedup = {}
naive = times.get("BM_PipelineNaive")
for threads in (1, 2, 4, 8):
    t = times.get("BM_PipelineBatch/%d" % threads)
    if naive and t:
        speedup["pipeline_x%d" % threads] = round(naive / t, 2)

bench["build_type"] = os.environ.get("SIMPROF_BUILD_TYPE", "unknown")
bench["git_sha"] = os.environ.get("SIMPROF_GIT_SHA", "unknown")
bench["simprof_metrics"] = {
    "lab": lab,
    "pool": pool,
    "speedup_vs_naive": speedup,
}
with open("BENCH_lab_pipeline.json", "w") as f:
    json.dump(bench, f, indent=1)
    f.write("\n")
print("folded metrics snapshot into BENCH_lab_pipeline.json")
print("speedup_vs_naive:", speedup)
EOF
