// simprof — command-line driver for the framework.
//
//   simprof list
//   simprof profile <workload> [--input NAME] [--scale S] [--seed N]
//                   [--out FILE] [--threads N]
//   simprof phases  <profile.sprf> [--threads N]
//   simprof sample  <profile.sprf> [-n N] [--technique simprof|srs|second|
//                   code|systematic|simprof-sys] [--seed N] [--threads N]
//   simprof size    <profile.sprf> [--error 0.05] [--confidence 99.7]
//   simprof sensitivity <workload> [--train NAME] [--scale S] [--threads N]
//
// --threads N sets the worker count for the parallel phase-formation engine
// (default: hardware_concurrency). Results are bit-identical for any N.
//
// `profile` runs a Table I workload on the simulated cluster and writes the
// thread profile; the analysis subcommands operate on saved profiles, so a
// profile collected once can be explored offline — the same split as the
// real tool's agent/analyzer.
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <vector>

#include "core/lab.h"
#include "core/phase.h"
#include "core/sampling.h"
#include "core/sensitivity.h"
#include "data/catalog.h"
#include "support/table.h"
#include "support/thread_pool.h"
#include "workloads/workloads.h"

namespace {

using namespace simprof;

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;

  std::string opt(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
};

Args parse(int argc, char** argv) {
  Args args;
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a.rfind("--", 0) == 0 || (a.size() == 2 && a[0] == '-')) {
      const std::string key = a.rfind("--", 0) == 0 ? a.substr(2) : a.substr(1);
      if (i + 1 < argc) {
        args.options[key] = argv[++i];
      } else {
        args.options[key] = "";
      }
    } else {
      args.positional.push_back(a);
    }
  }
  return args;
}

core::ThreadProfile load_profile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open profile: " + path);
  }
  return core::ThreadProfile::load(in);
}

int cmd_list() {
  Table t({"name", "benchmark", "framework", "graph"});
  for (const auto& w : workloads::all_workloads()) {
    t.row({w.name, w.benchmark, std::string(workloads::to_string(w.framework)),
           w.graph_workload ? "yes" : "no"});
  }
  t.print_aligned(std::cout);
  std::cout << "\nTable II graph inputs:";
  for (const auto& e : data::snap_catalog()) {
    std::cout << ' ' << e.name << (e.training ? "(train)" : "");
  }
  std::cout << '\n';
  return 0;
}

int cmd_profile(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: simprof profile <workload> [--input NAME] "
                 "[--scale S] [--seed N] [--out FILE] [--threads N]\n";
    return 2;
  }
  const std::string workload = args.positional[0];
  core::LabConfig cfg;
  cfg.scale = std::stod(args.opt("scale", "1.0"));
  cfg.seed = std::stoull(args.opt("seed", "42"));
  cfg.use_cache = false;
  core::WorkloadLab lab(cfg);
  const std::string input = args.opt("input", "Google");
  std::cout << "running " << workload << " (input " << input << ", scale "
            << cfg.scale << ") ...\n";
  auto run = lab.run(workload, input);
  const std::string out =
      args.opt("out", workload + "-" + input + ".sprf");
  std::ofstream os(out, std::ios::binary | std::ios::trunc);
  run.profile.save(os);
  std::cout << "wrote " << run.profile.num_units() << " sampling units ("
            << run.profile.num_methods() << " methods) to " << out
            << "\noracle CPI " << Table::num(run.profile.oracle_cpi(), 4)
            << ", records out " << run.result.records_out << '\n';
  return 0;
}

int cmd_phases(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: simprof phases <profile.sprf> [--threads N]\n";
    return 2;
  }
  const auto profile = load_profile(args.positional[0]);
  const auto model = core::form_phases(profile);
  const auto cov = core::cov_summary(profile, model);
  std::cout << profile.num_units() << " units, " << model.k
            << " phases; CoV population " << Table::num(cov.population)
            << ", weighted " << Table::num(cov.weighted) << ", max "
            << Table::num(cov.maximum) << "\n\n";
  Table t({"phase", "units", "weight", "mean_cpi", "cov", "type",
           "dominant_method"});
  for (std::size_t h = 0; h < model.k; ++h) {
    std::size_t best = 0;
    double bw = -1.0;
    for (std::size_t f = 0; f < model.feature_names.size(); ++f) {
      if (model.feature_kinds[f] == jvm::OpKind::kFramework) continue;
      if (model.centers.at(h, f) > bw) {
        bw = model.centers.at(h, f);
        best = f;
      }
    }
    t.row({std::to_string(h), std::to_string(model.phases[h].count),
           Table::pct(model.phases[h].weight),
           Table::num(model.phases[h].mean_cpi),
           Table::num(model.phases[h].cov),
           std::string(jvm::to_string(model.phase_types[h])),
           model.feature_names.empty() ? "-" : model.feature_names[best]});
  }
  t.print_aligned(std::cout);
  return 0;
}

int cmd_sample(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: simprof sample <profile.sprf> [-n N] "
                 "[--technique T] [--seed N] [--threads N]\n";
    return 2;
  }
  const auto profile = load_profile(args.positional[0]);
  const auto n = static_cast<std::size_t>(std::stoul(args.opt("n", "20")));
  const auto seed = std::stoull(args.opt("seed", "1"));
  const std::string tech = args.opt("technique", "simprof");

  core::SamplePlan plan;
  if (tech == "srs") {
    plan = core::srs_sample(profile, n, seed);
  } else if (tech == "second") {
    plan = core::second_sample(profile, 0.1, 2.0);
  } else if (tech == "systematic") {
    plan = core::systematic_sample(profile, n, seed);
  } else if (tech == "code" || tech == "simprof" || tech == "simprof-sys") {
    const auto model = core::form_phases(profile);
    plan = tech == "code"
               ? core::code_sample(profile, model)
               : (tech == "simprof"
                      ? core::simprof_sample(profile, model, n, seed)
                      : core::simprof_systematic_sample(profile, model, n,
                                                        seed));
  } else {
    std::cerr << "unknown technique: " << tech << '\n';
    return 2;
  }

  std::cout << to_string(plan.technique) << " selected "
            << plan.sample_size() << " simulation points\n";
  std::cout << "estimate " << Table::num(plan.estimated_cpi, 4) << " vs oracle "
            << Table::num(profile.oracle_cpi(), 4) << " (error "
            << Table::pct(core::relative_error(plan, profile), 2) << ")";
  if (plan.standard_error > 0.0) {
    std::cout << ", 99.7% CI ±" << Table::num(plan.ci.margin, 4);
  }
  std::cout << "\nunit_id,phase,weight\n";
  for (const auto& pt : plan.points) {
    std::cout << profile.units[pt.unit_index].unit_id << ',' << pt.phase << ','
              << Table::num(pt.weight, 5) << '\n';
  }
  return 0;
}

int cmd_size(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: simprof size <profile.sprf> [--error 0.05]\n";
    return 2;
  }
  const auto profile = load_profile(args.positional[0]);
  const auto model = core::form_phases(profile);
  const double err = std::stod(args.opt("error", "0.05"));
  const auto n = core::required_sample_size(model, err);
  std::cout << "units for " << Table::pct(err, 0)
            << " error at 99.7% confidence: " << n << " of "
            << profile.num_units() << " ("
            << Table::pct(static_cast<double>(n) /
                          static_cast<double>(profile.num_units()))
            << " of the run)\n";
  return 0;
}

int cmd_sensitivity(const Args& args) {
  if (args.positional.empty()) {
    std::cerr << "usage: simprof sensitivity <workload> [--train NAME] "
                 "[--scale S] [--threads N]\n";
    return 2;
  }
  const std::string workload = args.positional[0];
  core::LabConfig cfg;
  cfg.scale = std::stod(args.opt("scale", "1.0"));
  core::WorkloadLab lab(cfg);
  const std::string train_name = args.opt("train", "Google");
  const auto train = lab.run(workload, train_name);
  const auto model = core::form_phases(train.profile);

  std::vector<core::ThreadProfile> refs;
  std::vector<std::string> names;
  for (const auto& e : data::snap_catalog()) {
    if (e.name == train_name) continue;
    std::cout << "profiling reference " << e.name << "...\n";
    refs.push_back(lab.run(workload, e.name).profile);
    names.push_back(e.name);
  }
  std::vector<const core::ThreadProfile*> ptrs;
  for (const auto& r : refs) ptrs.push_back(&r);
  const auto report = core::input_sensitivity_test(model, ptrs, names);
  std::cout << report.num_sensitive() << "/" << model.k
            << " phases input-sensitive; simulation points needed per "
               "reference input: "
            << Table::pct(report.sensitive_point_fraction(
                   core::simprof_sample(train.profile, model, 20, 1)))
            << '\n';
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    std::cerr << "simprof — sampling framework for data-analytic workloads\n"
                 "subcommands: list, profile, phases, sample, size, "
                 "sensitivity\n";
    return 2;
  }
  const std::string cmd = argv[1];
  const Args args = parse(argc, argv);
  try {
    // Global: --threads N caps the phase-formation thread pool for every
    // subcommand. Output is bit-identical regardless of the value.
    if (const std::string t = args.opt("threads", ""); !t.empty()) {
      try {
        support::set_default_thread_count(std::stoull(t));
      } catch (const std::exception&) {
        std::cerr << "error: --threads expects a non-negative integer, got '"
                  << t << "'\n";
        return 2;
      }
    }
    if (cmd == "list") return cmd_list();
    if (cmd == "profile") return cmd_profile(args);
    if (cmd == "phases") return cmd_phases(args);
    if (cmd == "sample") return cmd_sample(args);
    if (cmd == "size") return cmd_size(args);
    if (cmd == "sensitivity") return cmd_sensitivity(args);
    std::cerr << "unknown subcommand: " << cmd << '\n';
    return 2;
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    return 1;
  }
}
