// simprof — command-line driver for the framework.
//
//   simprof list
//   simprof profile <workload> [--input NAME] [--scale S] [--seed N]
//                   [--out FILE]
//   simprof phases  <profile.sprf>
//   simprof sample  <profile.sprf> [-n N] [--technique simprof|srs|second|
//                   code|systematic|simprof-sys] [--seed N]
//   simprof size    <profile.sprf> [--error 0.05] [--confidence 99.7]
//   simprof sensitivity <workload> [--train NAME] [--scale S]
//   simprof measure <workload> [--input NAME] [--scale S] [--seed N]
//                   [--units LIST | -n N]
//   simprof verify  [--cases N] [--seed N] [--resamples N] [--skip-lab]
//   simprof report  <base.json> <new.json> | <manifest-dir>
//   simprof serve   --socket PATH [--tickets-max N] [--fixed] ...
//   simprof loadgen --socket PATH [--clients N] [--requests N] ...
//   simprof --version
//
// Global flags (any subcommand):
//   --threads N       worker count for the parallel engines: phase
//                     formation and the batched lab pipeline (`sensitivity`
//                     profiles its training + reference inputs as one
//                     lab.run_batch). Default: hardware_concurrency;
//                     results bit-identical for any N.
//   --checkpoint-dir DIR
//                     root for sampling-unit checkpoint archives (default:
//                     $SIMPROF_CHECKPOINT_DIR or <cache>/ckpt)
//   --checkpoint-stride K
//                     save a checkpoint every K unit boundaries during
//                     oracle passes; 0 disables recording (default 2)
//   --log-level L     trace|debug|info|warn|error|off (default: info, or
//                     $SIMPROF_LOG_LEVEL)
//   --metrics-out F   write a JSON metrics snapshot on exit
//   --trace-out F     collect Chrome trace events (load in Perfetto /
//                     chrome://tracing) and write them on exit
//   --manifest-out F  where the run manifest goes (default:
//                     $SIMPROF_MANIFEST_DIR or .simprof_manifests/)
//   --no-manifest     skip the run manifest for this invocation
//   --heartbeat SECS  log a progress line every SECS seconds; SIGUSR1 dumps
//                     a live flight record (open spans + metrics)
//   --help, -h        this help (or per-subcommand usage)
//
// Every invocation (unless --no-manifest) writes a schema-versioned run
// manifest at exit — build sha, config, metrics, span rollup, quality — and
// `simprof report` diffs two of them (or gates the newest of a directory),
// exiting non-zero on a latency/quality regression. See DESIGN.md §6g.
//
// `profile` runs a Table I workload on the simulated cluster and writes the
// thread profile; the analysis subcommands operate on saved profiles, so a
// profile collected once can be explored offline — the same split as the
// real tool's agent/analyzer.
#include <pthread.h>

#include <atomic>
#include <cctype>
#include <cmath>
#include <csignal>
#include <cstdlib>
#include <cstring>
#include <fstream>
#include <iostream>
#include <map>
#include <string>
#include <thread>
#include <vector>

#include "core/checkpoint.h"
#include "core/lab.h"
#include "core/phase.h"
#include "core/sampling.h"
#include "core/sensitivity.h"
#include "core/streaming.h"
#include "data/catalog.h"
#include "features/feature_mode.h"
#include "obs/obs.h"
#include "service/loadgen.h"
#include "service/server.h"
#include "support/table.h"
#include "support/thread_pool.h"
#include "verify/fault_inject.h"
#include "verify/oracle.h"
#include "verify/roundtrip.h"
#include "workloads/workloads.h"

namespace {

using namespace simprof;

struct FlagSpec {
  std::string name;    // without leading dashes; "n" doubles as "-n"
  std::string value;   // metavariable shown in help; empty → boolean flag
  std::string help;
};

const std::vector<FlagSpec> kGlobalFlags = {
    {"threads", "N",
     "worker threads for phase formation and batched lab runs "
     "(0 = hardware; output bit-identical for any N)"},
    {"checkpoint-dir", "DIR",
     "checkpoint archive root (default $SIMPROF_CHECKPOINT_DIR or "
     "<cache>/ckpt)"},
    {"checkpoint-stride", "K",
     "save a checkpoint every K unit boundaries; 0 disables (default 2)"},
    {"log-level", "LEVEL", "trace|debug|info|warn|error|off (default info)"},
    {"metrics-out", "FILE", "write a JSON metrics snapshot on exit"},
    {"trace-out", "FILE", "write Chrome trace events (Perfetto) on exit"},
    {"manifest-out", "FILE",
     "run-manifest path (default $SIMPROF_MANIFEST_DIR or "
     ".simprof_manifests/)"},
    {"no-manifest", "", "do not write a run manifest"},
    {"heartbeat", "SECS",
     "periodic progress line every SECS seconds; SIGUSR1 writes a live "
     "flight record"},
    {"help", "", "show this help"},
};

struct CommandSpec {
  std::string name;
  std::string positional;  // e.g. "<workload>"; empty → none
  std::string summary;
  std::vector<FlagSpec> flags;
};

const std::vector<CommandSpec> kCommands = {
    {"list", "", "list Table I workloads and Table II graph inputs", {}},
    {"profile",
     "<workload>",
     "run a workload under the thread profiler, write <name>.sprf",
     {{"input", "NAME", "Table II graph input (default Google)"},
      {"scale", "S", "workload scale factor (default 1.0)"},
      {"seed", "N", "simulation seed (default 42)"},
      {"out", "FILE", "output profile path"},
      {"stream", "",
       "feed units through the online phase former in arrival order and "
       "emit interim stratified selections at every recluster, before "
       "ingestion finishes"},
      {"stream-warmup", "N",
       "units before the first streaming recluster (default 16)"},
      {"stream-batch", "N",
       "mini-batch size for streaming center refinement (default 8)"},
      {"stream-retain", "N",
       "streaming retention cap in units, 0 = retain all (default 0)"},
      {"features", "MODE",
       "feature space for --stream phase formation: freq|mav|combined "
       "(default freq)"},
      {"estimator", "E",
       "stratified estimator for --stream interim selections: "
       "neyman|two-phase (default neyman)"}}},
    {"phases",
     "<profile.sprf>",
     "form phases from a saved profile and print the phase table",
     {{"features", "MODE",
       "feature space: freq|mav|combined (default freq)"}}},
    {"sample",
     "<profile.sprf>",
     "draw simulation points with a sampling technique",
     {{"n", "N", "sample size (default 20)"},
      {"technique", "T",
       "simprof|srs|second|code|systematic|smarts|simprof-sys "
       "(default simprof)"},
      {"seed", "N", "sampling seed (default 1)"},
      {"features", "MODE",
       "feature space for phase formation: freq|mav|combined "
       "(default freq)"},
      {"estimator", "E",
       "stratified estimator for the simprof technique: neyman|two-phase "
       "(default neyman)"}}},
    {"size",
     "<profile.sprf>",
     "required sample size for a target error bound",
     {{"error", "E", "relative error margin (default 0.05)"},
      {"confidence", "PCT", "confidence level: 90|95|99|99.7 (default 99.7)"},
      {"features", "MODE",
       "feature space for phase formation: freq|mav|combined "
       "(default freq)"}}},
    {"sensitivity",
     "<workload>",
     "train on one input, test phase sensitivity across the rest",
     {{"train", "NAME", "training graph input (default Google)"},
      {"scale", "S", "workload scale factor (default 1.0)"},
      {"seed", "N", "simulation seed (default 42)"},
      {"features", "MODE",
       "feature space for phase formation: freq|mav|combined "
       "(default freq)"},
      {"estimator", "E",
       "stratified estimator for the point-budget sample: neyman|two-phase "
       "(default neyman)"}}},
    {"measure",
     "<workload>",
     "measure selected sampling units via checkpoint restore + "
     "fast-forward (SMARTS-style)",
     {{"input", "NAME", "Table II graph input (default Google)"},
      {"scale", "S", "workload scale factor (default 1.0)"},
      {"seed", "N", "simulation seed (default 42)"},
      {"units", "LIST", "comma-separated unit ids (overrides -n)"},
      {"n", "N", "SMARTS systematic selection size (default 10)"},
      {"sample-seed", "N", "selection seed for -n (default 1)"},
      {"features", "MODE",
       "feature space for --estimator selection: freq|mav|combined "
       "(default freq)"},
      {"estimator", "E",
       "select units with a stratified plan instead of SMARTS and report "
       "its weighted CPI estimate: neyman|two-phase"}}},
    {"verify",
     "",
     "fault-injection + oracle verification of the archive/cache and "
     "statistics layers",
     {{"cases", "N", "seeded archive corruption cases (default 500)"},
      {"seed", "N", "verification seed (default 1)"},
      {"resamples", "N", "CI-coverage resamples (default 10000)"},
      {"skip-lab", "", "skip the on-disk lab-cache recovery drill"}}},
    {"serve",
     "",
     "run the resident profiling daemon on a Unix socket: shared lab "
     "cache, request queue, per-client quotas and throughput-probing "
     "admission control (SIGINT/SIGTERM drains and exits cleanly)",
     {{"socket", "PATH", "Unix-domain socket path to listen on (required)"},
      {"max-queue", "N", "request queue capacity (default 64)"},
      {"client-inflight", "N",
       "per-connection in-flight request quota (default 8)"},
      {"tickets", "N", "initial admitted concurrency (default 2)"},
      {"tickets-min", "N", "admission floor (default 1)"},
      {"tickets-max", "N", "admission ceiling / worker count (default 16)"},
      {"fixed", "",
       "pin concurrency to --tickets instead of throughput probing"},
      {"probe-interval-ms", "MS", "probe window length (default 200)"},
      {"stream-retain-cap", "N",
       "hard cap on a streaming request's retained units — the per-client "
       "memory quota (default 0 = uncapped)"},
      {"request-threads", "N",
       "threads each request's lab/analysis may use (default 1; "
       "concurrency comes from admission tickets)"}}},
    {"loadgen",
     "",
     "closed-loop load generator against a running daemon; prints QPS, "
     "latency quantiles and typed rejection counts",
     {{"socket", "PATH", "daemon socket path (required)"},
      {"clients", "N", "concurrent connections (default 4)"},
      {"requests", "N", "requests per connection (default 8)"},
      {"inflight", "N",
       "pipelined requests per connection (default 1; set above the "
       "daemon's --client-inflight to exercise typed rejections)"},
      {"workloads", "LIST",
       "comma-separated workload mix (default grep_sp)"},
      {"input", "NAME", "Table II graph input (default Google)"},
      {"scale", "S", "workload scale factor (default 0.05)"},
      {"seed", "N", "simulation seed (default 42)"},
      {"vary-seed", "",
       "use seed+i per request so each request is a distinct oracle pass"},
      {"no-analyze", "", "skip phase formation + sampling on the daemon"},
      {"sample", "N", "simulation points per request (default 8)"},
      {"stream", "", "request streaming analysis with interim selections"},
      {"stream-retain", "N",
       "requested streaming retention cap in units (default 0)"},
      {"features", "MODE",
       "feature space for daemon-side analysis: freq|mav|combined "
       "(default freq)"},
      {"estimator", "E",
       "stratified estimator for daemon-side selections: neyman|two-phase "
       "(default neyman)"},
      {"json", "FILE", "write the loadgen report as JSON"}}},
    {"report",
     "<base.json> <new.json> | <manifest-dir>",
     "diff two run manifests (or gate the newest of a directory) and flag "
     "latency/quality regressions; exits 1 on a breach",
     {{"latency-threshold", "FRAC",
       "relative wall-time growth that fails the gate (default 0.25)"},
      {"quality-threshold", "FRAC",
       "relative quality degradation that fails the gate (default 0.10)"},
      {"min-delta", "MS",
       "absolute wall-time noise floor in ms (default 5)"},
      {"md", "FILE", "also write the markdown report to FILE"},
      {"json", "FILE", "also write the JSON report to FILE"}}},
};

struct Args {
  std::vector<std::string> positional;
  std::map<std::string, std::string> options;
  bool help = false;

  bool has(const std::string& key) const { return options.count(key) > 0; }
  std::string opt(const std::string& key, const std::string& fallback) const {
    auto it = options.find(key);
    return it == options.end() ? fallback : it->second;
  }
};

const CommandSpec* find_command(const std::string& name) {
  for (const auto& c : kCommands) {
    if (c.name == name) return &c;
  }
  return nullptr;
}

void print_flag(std::ostream& os, const FlagSpec& f) {
  std::string left = "  --" + f.name;
  if (f.name.size() == 1) left += ", -" + f.name;
  if (!f.value.empty()) left += " " + f.value;
  os << left;
  for (std::size_t pad = left.size(); pad < 26; ++pad) os << ' ';
  os << f.help << '\n';
}

void print_usage(std::ostream& os) {
  os << "simprof — sampling framework for data-analytic workloads\n\n"
        "usage: simprof <subcommand> [flags]\n\nsubcommands:\n";
  for (const auto& c : kCommands) {
    std::string left = "  " + c.name + " " + c.positional;
    os << left;
    for (std::size_t pad = left.size(); pad < 28; ++pad) os << ' ';
    os << c.summary << '\n';
  }
  os << "\nglobal flags:\n";
  for (const auto& f : kGlobalFlags) print_flag(os, f);
  os << "\nrun `simprof <subcommand> --help` for per-subcommand flags;\n"
        "`simprof --version` prints build sha + schema versions.\n";
}

void print_command_usage(std::ostream& os, const CommandSpec& cmd) {
  os << "usage: simprof " << cmd.name;
  if (!cmd.positional.empty()) os << ' ' << cmd.positional;
  for (const auto& f : cmd.flags) {
    os << " [--" << f.name << (f.value.empty() ? "" : " " + f.value) << ']';
  }
  os << "\n\n" << cmd.summary << "\n";
  if (!cmd.flags.empty()) {
    os << "\nflags:\n";
    for (const auto& f : cmd.flags) print_flag(os, f);
  }
  os << "\nglobal flags:\n";
  for (const auto& f : kGlobalFlags) print_flag(os, f);
}

const FlagSpec* find_flag(const CommandSpec& cmd, const std::string& key) {
  for (const auto& f : cmd.flags) {
    if (f.name == key) return &f;
  }
  for (const auto& f : kGlobalFlags) {
    if (f.name == key) return &f;
  }
  return nullptr;
}

/// Parse argv[2..] against the subcommand's flag spec. Returns false (after
/// printing a diagnostic) on an unknown flag or a flag missing its value.
bool parse(const CommandSpec& cmd, int argc, char** argv, Args& args) {
  for (int i = 2; i < argc; ++i) {
    std::string a = argv[i];
    if (a == "-h" || a == "--help") {
      args.help = true;
      continue;
    }
    const bool long_flag = a.rfind("--", 0) == 0;
    const bool short_flag = !long_flag && a.size() == 2 && a[0] == '-' &&
                            std::isalpha(static_cast<unsigned char>(a[1]));
    if (!long_flag && !short_flag) {
      args.positional.push_back(a);
      continue;
    }
    std::string key = long_flag ? a.substr(2) : a.substr(1);
    std::string inline_value;
    bool has_inline = false;
    if (const auto eq = key.find('='); eq != std::string::npos) {
      inline_value = key.substr(eq + 1);
      key = key.substr(0, eq);
      has_inline = true;
    }
    const FlagSpec* spec = find_flag(cmd, key);
    if (spec == nullptr) {
      std::cerr << "error: unknown flag '" << a << "' for `simprof "
                << cmd.name << "`\nvalid flags:";
      for (const auto& f : cmd.flags) std::cerr << " --" << f.name;
      for (const auto& f : kGlobalFlags) std::cerr << " --" << f.name;
      std::cerr << "\nrun `simprof " << cmd.name << " --help` for details.\n";
      return false;
    }
    if (spec->value.empty()) {  // boolean flag
      args.options[key] = "1";
      continue;
    }
    if (has_inline) {
      args.options[key] = inline_value;
    } else if (i + 1 < argc) {
      args.options[key] = argv[++i];
    } else {
      std::cerr << "error: flag '--" << key << "' expects a value ("
                << spec->value << ")\n";
      return false;
    }
  }
  return true;
}

/// Confidence percentage → normal z-score for the common levels.
bool confidence_to_z(double pct, double& z) {
  struct Level { double pct, z; };
  static constexpr Level kLevels[] = {
      {90.0, 1.645}, {95.0, 1.960}, {99.0, 2.576}, {99.7, 3.0}};
  for (const auto& l : kLevels) {
    if (std::abs(pct - l.pct) < 0.05) {
      z = l.z;
      return true;
    }
  }
  return false;
}

/// Parse --features into a feature mode (default freq). Returns false after
/// a diagnostic on an unknown name.
bool parse_features_arg(const Args& args, features::FeatureMode& mode) {
  const std::string s = args.opt("features", "freq");
  if (const auto m = features::parse_feature_mode(s)) {
    mode = *m;
    return true;
  }
  std::cerr << "error: --features must be freq|mav|combined (got '" << s
            << "')\n";
  return false;
}

enum class EstimatorKind { kNeyman, kTwoPhase };

/// Parse --estimator (default neyman). Returns false after a diagnostic on
/// an unknown name.
bool parse_estimator_arg(const Args& args, EstimatorKind& est) {
  const std::string s = args.opt("estimator", "neyman");
  if (s == "neyman") {
    est = EstimatorKind::kNeyman;
    return true;
  }
  if (s == "two-phase" || s == "two_phase") {
    est = EstimatorKind::kTwoPhase;
    return true;
  }
  std::cerr << "error: --estimator must be neyman|two-phase (got '" << s
            << "')\n";
  return false;
}

/// The stratified plan under the chosen estimator: classic Neyman-allocated
/// SimProf or double sampling for stratification.
core::SamplePlan stratified_plan(const core::ThreadProfile& profile,
                                 const core::PhaseModel& model, std::size_t n,
                                 std::uint64_t seed, EstimatorKind est) {
  return est == EstimatorKind::kTwoPhase
             ? core::two_phase_sample(profile, model, n, seed)
             : core::simprof_sample(profile, model, n, seed);
}

/// Publish the estimator-grid quality figures for a stratified plan: the
/// generic figures always, plus the mode/estimator-specific names the
/// report gate tracks (lower is better for all of them).
void set_plan_quality(const core::SamplePlan& plan,
                      const core::ThreadProfile& profile,
                      features::FeatureMode mode, EstimatorKind est) {
  obs::ledger().set_quality("sampling_error_frac",
                            core::relative_error(plan, profile));
  const bool has_ci = plan.estimated_cpi > 0.0 && plan.ci.margin > 0.0;
  if (has_ci) {
    obs::ledger().set_quality("ci_rel_width",
                              plan.ci.margin / plan.estimated_cpi);
  }
  if (mode != features::FeatureMode::kFreq) {
    obs::ledger().set_quality("mav_sampling_error_frac",
                              core::relative_error(plan, profile));
  }
  if (est == EstimatorKind::kTwoPhase && has_ci) {
    obs::ledger().set_quality("two_phase_ci_rel_width",
                              plan.ci.margin / plan.estimated_cpi);
  }
}

/// Fold the global checkpoint flags into a lab configuration.
bool apply_checkpoint_flags(const Args& args, core::LabConfig& cfg) {
  cfg.checkpoint_dir = args.opt("checkpoint-dir", "");
  if (const std::string s = args.opt("checkpoint-stride", ""); !s.empty()) {
    try {
      cfg.checkpoint_stride = std::stoull(s);
    } catch (const std::exception&) {
      std::cerr << "error: --checkpoint-stride expects a non-negative "
                   "integer, got '"
                << s << "'\n";
      return false;
    }
  }
  return true;
}

core::ThreadProfile load_profile(const std::string& path) {
  std::ifstream in(path, std::ios::binary);
  if (!in) {
    throw std::runtime_error("cannot open profile: " + path);
  }
  return core::ThreadProfile::load(in);
}

int cmd_list() {
  Table t({"name", "benchmark", "framework", "graph"});
  for (const auto& w : workloads::all_workloads()) {
    t.row({w.name, w.benchmark, std::string(workloads::to_string(w.framework)),
           w.graph_workload ? "yes" : "no"});
  }
  t.print_aligned(std::cout);
  std::cout << "\nTable II graph inputs:";
  for (const auto& e : data::snap_catalog()) {
    std::cout << ' ' << e.name << (e.training ? "(train)" : "");
  }
  std::cout << '\n';
  return 0;
}

int cmd_profile(const Args& args) {
  const std::string workload = args.positional[0];
  core::LabConfig cfg;
  cfg.scale = std::stod(args.opt("scale", "1.0"));
  cfg.seed = std::stoull(args.opt("seed", "42"));
  cfg.use_cache = false;
  if (!apply_checkpoint_flags(args, cfg)) return 2;
  features::FeatureMode mode = features::FeatureMode::kFreq;
  EstimatorKind est = EstimatorKind::kNeyman;
  if (!parse_features_arg(args, mode) || !parse_estimator_arg(args, est)) {
    return 2;
  }
  core::WorkloadLab lab(cfg);
  const std::string input = args.opt("input", "Google");
  obs::ledger().set_config("workload", workload);
  obs::ledger().set_config("input", input);
  obs::ledger().set_config("scale", args.opt("scale", "1.0"));
  obs::ledger().set_config("seed", args.opt("seed", "42"));
  std::cout << "running " << workload << " (input " << input << ", scale "
            << cfg.scale << ") ...\n";
  auto run = lab.run(workload, input);
  const std::string out =
      args.opt("out", workload + "-" + input + ".sprf");
  std::ofstream os(out, std::ios::binary | std::ios::trunc);
  run.profile.save(os);
  obs::ledger().set_quality("units", static_cast<double>(run.profile.num_units()));
  obs::ledger().set_quality("oracle_cpi", run.profile.oracle_cpi());
  std::cout << "wrote " << run.profile.num_units() << " sampling units ("
            << run.profile.num_methods() << " methods) to " << out
            << "\noracle CPI " << Table::num(run.profile.oracle_cpi(), 4)
            << ", records out " << run.result.records_out << '\n';

  if (args.has("stream")) {
    // Online path: replay the collected units through the streaming former
    // in arrival order (standing in for the live unit-boundary hook of a
    // profiling daemon) and print an interim stratified selection at every
    // recluster — selections exist long before the last unit is ingested.
    core::StreamingConfig scfg;
    scfg.warmup_units = std::stoull(args.opt("stream-warmup", "16"));
    scfg.refine_batch = std::stoull(args.opt("stream-batch", "8"));
    scfg.max_retained_units = std::stoull(args.opt("stream-retain", "0"));
    scfg.formation.features = mode;
    core::StreamingPhaseFormer former(scfg);
    former.set_update_hook([&](const core::StreamingPhaseFormer& f) {
      const std::size_t n = std::min<std::size_t>(16, f.units_retained());
      const auto plan = stratified_plan(f.profile(), f.model(), n, cfg.seed,
                                        est);
      std::cout << "stream: recluster " << f.reclusters() << " @ "
                << f.units_ingested() << " units -> k=" << f.model().k
                << ", interim selection " << plan.sample_size()
                << " points, est CPI " << Table::num(plan.estimated_cpi, 4)
                << '\n';
    });
    former.ingest_range(run.profile, 0, run.profile.num_units());
    const core::PhaseModel streamed = former.finalize();

    // Quality figures vs the batch model on the same profile — the manifest
    // carries both the streamed structure and its distance from batch, so
    // `simprof report` gates streaming drift across runs.
    core::PhaseFormationConfig pcfg;
    pcfg.features = mode;
    const core::PhaseModel batch = core::form_phases(run.profile, pcfg);
    const double phase_delta = static_cast<double>(
        streamed.k > batch.k ? streamed.k - batch.k : batch.k - streamed.k);
    obs::ledger().set_config("stream", "1");
    obs::ledger().set_config("features", std::string(features::to_string(mode)));
    obs::ledger().set_config(
        "estimator", est == EstimatorKind::kTwoPhase ? "two-phase" : "neyman");
    obs::ledger().set_quality("stream_phase_count",
                              static_cast<double>(streamed.k));
    if (streamed.k >= 1 && streamed.k <= streamed.silhouette_scores.size()) {
      obs::ledger().set_quality("stream_silhouette",
                                streamed.silhouette_scores[streamed.k - 1]);
    }
    obs::ledger().set_quality("stream_reclusters",
                              static_cast<double>(former.reclusters()));
    obs::ledger().set_quality("stream_batch_phase_delta", phase_delta);
    std::cout << "stream: final k=" << streamed.k << " after "
              << former.reclusters() << " reclusters (batch k=" << batch.k
              << ", delta " << phase_delta << ")\n";
  }
  return 0;
}

int cmd_phases(const Args& args) {
  const auto profile = load_profile(args.positional[0]);
  features::FeatureMode mode = features::FeatureMode::kFreq;
  if (!parse_features_arg(args, mode)) return 2;
  core::PhaseFormationConfig pcfg;
  pcfg.features = mode;
  const auto model = core::form_phases(profile, pcfg);
  const auto cov = core::cov_summary(profile, model);
  obs::ledger().set_config("profile", args.positional[0]);
  obs::ledger().set_config("features", std::string(features::to_string(mode)));
  obs::ledger().set_quality("phase_count", static_cast<double>(model.k));
  if (model.k >= 1 && model.k <= model.silhouette_scores.size()) {
    obs::ledger().set_quality("silhouette",
                              model.silhouette_scores[model.k - 1]);
  }
  obs::ledger().set_quality("cov_weighted", cov.weighted);
  std::cout << profile.num_units() << " units, " << model.k
            << " phases; CoV population " << Table::num(cov.population)
            << ", weighted " << Table::num(cov.weighted) << ", max "
            << Table::num(cov.maximum) << "\n\n";
  Table t({"phase", "units", "weight", "mean_cpi", "cov", "type",
           "dominant_method"});
  for (std::size_t h = 0; h < model.k; ++h) {
    std::size_t best = 0;
    double bw = -1.0;
    for (std::size_t f = 0; f < model.feature_names.size(); ++f) {
      if (model.feature_kinds[f] == jvm::OpKind::kFramework) continue;
      if (model.centers.at(h, f) > bw) {
        bw = model.centers.at(h, f);
        best = f;
      }
    }
    t.row({std::to_string(h), std::to_string(model.phases[h].count),
           Table::pct(model.phases[h].weight),
           Table::num(model.phases[h].mean_cpi),
           Table::num(model.phases[h].cov),
           std::string(jvm::to_string(model.phase_types[h])),
           model.feature_names.empty() || bw < 0.0
               ? "-"
               : model.feature_names[best]});
  }
  t.print_aligned(std::cout);
  return 0;
}

int cmd_sample(const Args& args) {
  const auto profile = load_profile(args.positional[0]);
  const auto n = static_cast<std::size_t>(std::stoul(args.opt("n", "20")));
  const auto seed = std::stoull(args.opt("seed", "1"));
  const std::string tech = args.opt("technique", "simprof");
  features::FeatureMode mode = features::FeatureMode::kFreq;
  EstimatorKind est = EstimatorKind::kNeyman;
  if (!parse_features_arg(args, mode) || !parse_estimator_arg(args, est)) {
    return 2;
  }

  core::SamplePlan plan;
  if (tech == "srs") {
    plan = core::srs_sample(profile, n, seed);
  } else if (tech == "second") {
    plan = core::second_sample(profile, 0.1, 2.0);
  } else if (tech == "systematic") {
    plan = core::systematic_sample(profile, n, seed);
  } else if (tech == "smarts") {
    plan = core::smarts_sample(profile, n, seed);
  } else if (tech == "code" || tech == "simprof" || tech == "simprof-sys") {
    core::PhaseFormationConfig pcfg;
    pcfg.features = mode;
    const auto model = core::form_phases(profile, pcfg);
    plan = tech == "code"
               ? core::code_sample(profile, model)
               : (tech == "simprof"
                      ? stratified_plan(profile, model, n, seed, est)
                      : core::simprof_systematic_sample(profile, model, n,
                                                        seed));
  } else {
    std::cerr << "error: unknown technique '" << tech
              << "' (simprof|srs|second|code|systematic|smarts|"
                 "simprof-sys)\n";
    return 2;
  }

  obs::ledger().set_config("profile", args.positional[0]);
  obs::ledger().set_config("technique", tech);
  obs::ledger().set_config("n", args.opt("n", "20"));
  obs::ledger().set_config("seed", args.opt("seed", "1"));
  obs::ledger().set_config("features", std::string(features::to_string(mode)));
  obs::ledger().set_config(
      "estimator", est == EstimatorKind::kTwoPhase ? "two-phase" : "neyman");
  set_plan_quality(plan, profile, mode, est);
  std::cout << to_string(plan.technique) << " selected "
            << plan.sample_size() << " simulation points\n";
  std::cout << "estimate " << Table::num(plan.estimated_cpi, 4) << " vs oracle "
            << Table::num(profile.oracle_cpi(), 4) << " (error "
            << Table::pct(core::relative_error(plan, profile), 2) << ")";
  if (plan.standard_error > 0.0) {
    std::cout << ", 99.7% CI ±" << Table::num(plan.ci.margin, 4);
  }
  std::cout << "\nunit_id,phase,weight\n";
  for (const auto& pt : plan.points) {
    std::cout << profile.units[pt.unit_index].unit_id << ',' << pt.phase << ','
              << Table::num(pt.weight, 5) << '\n';
  }
  return 0;
}

int cmd_size(const Args& args) {
  const auto profile = load_profile(args.positional[0]);
  features::FeatureMode mode = features::FeatureMode::kFreq;
  if (!parse_features_arg(args, mode)) return 2;
  core::PhaseFormationConfig pcfg;
  pcfg.features = mode;
  const auto model = core::form_phases(profile, pcfg);
  const double err = std::stod(args.opt("error", "0.05"));
  const double conf = std::stod(args.opt("confidence", "99.7"));
  double z = 3.0;
  if (!confidence_to_z(conf, z)) {
    std::cerr << "error: --confidence must be one of 90, 95, 99, 99.7 (got "
              << conf << ")\n";
    return 2;
  }
  const auto n = core::required_sample_size(model, err, z);
  std::cout << "units for " << Table::pct(err, 0) << " error at " << conf
            << "% confidence: " << n << " of " << profile.num_units() << " ("
            << Table::pct(static_cast<double>(n) /
                          static_cast<double>(profile.num_units()))
            << " of the run)\n";
  return 0;
}

int cmd_sensitivity(const Args& args) {
  const std::string workload = args.positional[0];
  core::LabConfig cfg;
  cfg.scale = std::stod(args.opt("scale", "1.0"));
  cfg.seed = std::stoull(args.opt("seed", "42"));
  if (!apply_checkpoint_flags(args, cfg)) return 2;
  features::FeatureMode mode = features::FeatureMode::kFreq;
  EstimatorKind est = EstimatorKind::kNeyman;
  if (!parse_features_arg(args, mode) || !parse_estimator_arg(args, est)) {
    return 2;
  }
  core::WorkloadLab lab(cfg);
  const std::string train_name = args.opt("train", "Google");
  // One batch covers the training input and every reference: cache misses
  // simulate concurrently on the thread pool (--threads), hits decode
  // alongside them, and the results are bit-identical to serial runs.
  std::vector<core::BatchItem> items;
  items.push_back({workload, train_name, {}});
  std::vector<std::string> names;
  for (const auto& e : data::snap_catalog()) {
    if (e.name == train_name) continue;
    items.push_back({workload, e.name, {}});
    names.push_back(e.name);
  }
  std::cout << "profiling " << train_name << " + " << names.size()
            << " reference inputs as one batch...\n";
  auto runs = lab.run_batch(items);
  const auto train = std::move(runs.front());
  core::PhaseFormationConfig pcfg;
  pcfg.features = mode;
  const auto model = core::form_phases(train.profile, pcfg);

  std::vector<const core::ThreadProfile*> ptrs;
  for (std::size_t i = 1; i < runs.size(); ++i) {
    ptrs.push_back(&runs[i].profile);
  }
  const auto report = core::input_sensitivity_test(model, ptrs, names);
  obs::ledger().set_config("workload", workload);
  obs::ledger().set_config("train", train_name);
  obs::ledger().set_config("features", std::string(features::to_string(mode)));
  obs::ledger().set_config(
      "estimator", est == EstimatorKind::kTwoPhase ? "two-phase" : "neyman");
  obs::ledger().set_quality("phase_count", static_cast<double>(model.k));
  obs::ledger().set_quality("sensitive_phases",
                            static_cast<double>(report.num_sensitive()));
  const auto budget_plan = stratified_plan(train.profile, model, 20, 1, est);
  set_plan_quality(budget_plan, train.profile, mode, est);
  std::cout << report.num_sensitive() << "/" << model.k
            << " phases input-sensitive; simulation points needed per "
               "reference input: "
            << Table::pct(report.sensitive_point_fraction(budget_plan))
            << '\n';
  return 0;
}

int cmd_measure(const Args& args) {
  const std::string workload = args.positional[0];
  core::LabConfig cfg;
  cfg.scale = std::stod(args.opt("scale", "1.0"));
  cfg.seed = std::stoull(args.opt("seed", "42"));
  if (!apply_checkpoint_flags(args, cfg)) return 2;
  core::WorkloadLab lab(cfg);
  const std::string input = args.opt("input", "Google");

  // The oracle pass populates the profile cache and (stride permitting)
  // records the checkpoint archives the fast path restores from.
  auto run = lab.run(workload, input);

  // --estimator switches the selection from SMARTS-systematic to a
  // stratified plan over the formed phases (in the chosen feature space);
  // the measured units then feed that plan's weighted CPI estimate.
  features::FeatureMode mode = features::FeatureMode::kFreq;
  if (!parse_features_arg(args, mode)) return 2;
  EstimatorKind est = EstimatorKind::kNeyman;
  const bool stratified = args.has("estimator");
  if (stratified && !parse_estimator_arg(args, est)) return 2;
  core::SamplePlan plan;

  std::vector<std::uint64_t> units;
  if (const std::string list = args.opt("units", ""); !list.empty()) {
    std::size_t pos = 0;
    while (pos < list.size()) {
      const std::size_t comma = list.find(',', pos);
      const std::string tok =
          list.substr(pos, comma == std::string::npos ? comma : comma - pos);
      try {
        units.push_back(std::stoull(tok));
      } catch (const std::exception&) {
        std::cerr << "error: --units expects comma-separated unit ids, got '"
                  << tok << "'\n";
        return 2;
      }
      if (comma == std::string::npos) break;
      pos = comma + 1;
    }
  } else {
    const auto n = static_cast<std::size_t>(std::stoul(args.opt("n", "10")));
    const auto sample_seed = std::stoull(args.opt("sample-seed", "1"));
    if (stratified) {
      core::PhaseFormationConfig pcfg;
      pcfg.features = mode;
      const auto model = core::form_phases(run.profile, pcfg);
      plan = stratified_plan(run.profile, model, n, sample_seed, est);
    } else {
      plan = core::smarts_sample(run.profile, n, sample_seed);
    }
    for (const auto& pt : plan.points) {
      units.push_back(run.profile.units[pt.unit_index].unit_id);
    }
  }

  const auto m = lab.measure_units(workload, input, units);
  obs::ledger().set_config("workload", workload);
  obs::ledger().set_config("input", input);
  obs::ledger().set_config("seed", args.opt("seed", "42"));
  if (stratified) {
    obs::ledger().set_config("features",
                             std::string(features::to_string(mode)));
    obs::ledger().set_config(
        "estimator",
        est == EstimatorKind::kTwoPhase ? "two-phase" : "neyman");
  }
  obs::ledger().set_quality("units_measured",
                            static_cast<double>(m.records.size()));
  Table t({"unit_id", "instructions", "cycles", "cpi"});
  for (const auto& u : m.records) {
    t.row({std::to_string(u.unit_id), std::to_string(u.counters.instructions),
           std::to_string(u.counters.cycles), Table::num(u.cpi(), 4)});
  }
  t.print_aligned(std::cout);
  std::cout << "measured " << m.records.size() << "/" << units.size()
            << " requested units\n"
            << "checkpoints_restored=" << m.checkpoints_restored
            << " fallback=" << (m.fallback ? 1 : 0)
            << " fast_forwarded_instrs=" << m.fast_forwarded_instrs << '\n';

  if (stratified && !plan.points.empty()) {
    // The plan's weights (which sum to 1) applied to the *measured* per-unit
    // CPIs — the estimator the measured sample actually induces.
    std::map<std::uint64_t, double> cpi_of;
    for (const auto& u : m.records) cpi_of[u.unit_id] = u.cpi();
    double estimate = 0.0;
    bool complete = true;
    for (const auto& pt : plan.points) {
      const auto it = cpi_of.find(run.profile.units[pt.unit_index].unit_id);
      if (it == cpi_of.end()) {
        complete = false;
        break;
      }
      estimate += pt.weight * it->second;
    }
    if (complete) {
      const double oracle = run.profile.oracle_cpi();
      const double err =
          oracle > 0.0 ? std::abs(estimate - oracle) / oracle : 0.0;
      obs::ledger().set_quality("sampling_error_frac", err);
      if (mode != features::FeatureMode::kFreq) {
        obs::ledger().set_quality("mav_sampling_error_frac", err);
      }
      if (est == EstimatorKind::kTwoPhase && plan.estimated_cpi > 0.0 &&
          plan.ci.margin > 0.0) {
        obs::ledger().set_quality("two_phase_ci_rel_width",
                                  plan.ci.margin / plan.estimated_cpi);
      }
      std::cout << "stratified estimate " << Table::num(estimate, 4)
                << " vs oracle " << Table::num(oracle, 4) << " (error "
                << Table::pct(err, 2) << ")\n";
    }
  }
  return 0;
}

int cmd_verify(const Args& args) {
  const auto cases =
      static_cast<std::size_t>(std::stoul(args.opt("cases", "500")));
  const auto seed = std::stoull(args.opt("seed", "1"));
  const auto resamples =
      static_cast<std::size_t>(std::stoul(args.opt("resamples", "10000")));

  verify::VerifyReport report;
  std::cout << "round-trip differential check...\n";
  report.merge(verify::verify_roundtrip(seed));
  std::cout << "archive fault injection (" << cases << " cases, seed " << seed
            << ")...\n";
  report.merge(verify::verify_archive_robustness({seed, cases}));
  std::cout << "checkpoint fault injection (" << cases << " cases, seed "
            << seed << ")...\n";
  report.merge(verify::verify_checkpoint_robustness({seed, cases}));
  std::cout << "statistical oracle harness (" << resamples
            << " coverage resamples)...\n";
  verify::OracleConfig oracle;
  oracle.seed = seed;
  oracle.coverage_resamples = resamples;
  report.merge(verify::verify_statistics(oracle));
  if (!args.has("skip-lab")) {
    std::cout << "lab cache corruption drill (tiny workload)...\n";
    report.merge(verify::verify_lab_cache_recovery(seed));
    std::cout << "checkpoint corruption drill (tiny workload)...\n";
    report.merge(verify::verify_checkpoint_recovery(seed));
  }

  std::cout << '\n';
  Table t({"check", "status", "detail"});
  for (const auto& c : report.checks) {
    t.row({c.name, c.passed ? "ok" : "FAIL", c.detail});
  }
  t.print_aligned(std::cout);
  std::cout << '\n'
            << report.checks.size() - report.failures() << "/"
            << report.checks.size() << " checks passed over "
            << report.cases_run << " seeded cases (fingerprint "
            << report.fingerprint << ")\n";
  if (!report.ok()) {
    std::cerr << "error: " << report.failures() << " verification check(s) "
              << "failed\n";
    return 1;
  }
  return 0;
}

int cmd_report(const Args& args) {
  obs::ReportThresholds thresholds;
  try {
    thresholds.latency_frac =
        std::stod(args.opt("latency-threshold", "0.25"));
    thresholds.quality_frac =
        std::stod(args.opt("quality-threshold", "0.10"));
    thresholds.latency_min_delta_ms = std::stod(args.opt("min-delta", "5"));
  } catch (const std::exception&) {
    std::cerr << "error: report thresholds must be numbers\n";
    return 2;
  }

  obs::RunReport report;
  std::string series_md;
  if (args.positional.size() == 2) {
    const auto base = obs::load_json_file(args.positional[0]);
    const auto cur = obs::load_json_file(args.positional[1]);
    if (!base || !cur) {
      std::cerr << "error: cannot load manifests\n";
      return 2;
    }
    report = obs::diff_manifests(*base, *cur, thresholds, args.positional[0],
                                 args.positional[1]);
  } else if (args.positional.size() == 1) {
    const auto dir = obs::report_directory(args.positional[0], thresholds);
    if (!dir) {
      std::cerr << "error: need a readable directory with >= 2 manifests\n";
      return 2;
    }
    report = dir->gate;
    series_md = dir->series_md;
  } else {
    std::cerr << "error: `simprof report` takes <base.json> <new.json> or "
                 "one <manifest-dir>\n";
    return 2;
  }

  std::string md = report.to_markdown();
  if (!series_md.empty()) md += "\n" + series_md;
  std::cout << md;
  if (const std::string f = args.opt("md", ""); !f.empty()) {
    std::ofstream out(f, std::ios::trunc);
    out << md;
  }
  if (const std::string f = args.opt("json", ""); !f.empty()) {
    std::ofstream out(f, std::ios::trunc);
    out << report.to_json();
  }
  obs::ledger().set_quality("regressions",
                            static_cast<double>(report.regressions()));
  return report.regressions() > 0 ? 1 : 0;
}

void print_version() {
  const obs::BuildInfo build = obs::build_info();
  std::cout << "simprof " << build.git_sha << " (" << build.build_type
            << ")\n"
            << "  cache schema      v" << core::kLabCacheSchema << "\n"
            << "  checkpoint schema v" << core::kCheckpointVersion << "\n"
            << "  manifest schema   simprof.manifest/"
            << obs::kManifestSchemaVersion << "\n";
}

/// Applies the observability flags at startup and flushes the requested
/// outputs on destruction (normal exit and error paths alike): trace,
/// metrics snapshot, and the run manifest with the final exit code.
class ObsFlags {
 public:
  bool apply(const Args& args, const std::string& verb, int argc,
             char** argv) {
    if (const std::string l = args.opt("log-level", ""); !l.empty()) {
      const auto level = obs::parse_log_level(l);
      if (!level) {
        std::cerr << "error: --log-level must be "
                     "trace|debug|info|warn|error|off (got '"
                  << l << "')\n";
        return false;
      }
      obs::set_log_level(*level);
    }
    metrics_out_ = args.opt("metrics-out", "");
    trace_out_ = args.opt("trace-out", "");

    std::vector<std::string> raw_args(argv + 2, argv + argc);
    obs::ledger().begin("simprof", verb, std::move(raw_args));
    obs::ledger().set_schema("cache", core::kLabCacheSchema);
    obs::ledger().set_schema("checkpoint", core::kCheckpointVersion);
    if (args.has("no-manifest")) {
      obs::ledger().disable();
    } else if (const std::string m = args.opt("manifest-out", "");
               !m.empty()) {
      obs::ledger().set_output_path(m);
    }

    // Tracing feeds both --trace-out and the manifest's span rollup, so a
    // manifest-emitting run always collects spans (observation only — it
    // cannot perturb results; see the determinism contract in obs/trace.h).
    if (!trace_out_.empty() || obs::ledger().enabled()) {
      obs::start_tracing();
    }

    if (const std::string hb = args.opt("heartbeat", ""); !hb.empty()) {
      obs::HeartbeatConfig config;
      try {
        config.period_s = std::stod(hb);
      } catch (const std::exception&) {
        std::cerr << "error: --heartbeat expects seconds, got '" << hb
                  << "'\n";
        return false;
      }
      obs::start_heartbeat(config);
      heartbeat_ = true;
    }
    return true;
  }

  void set_exit_code(int code) {
    exit_code_ = code;
    obs::ledger().set_exit_code(code);
  }

  /// Flush every requested output exactly once: trace, metrics snapshot and
  /// the run manifest. Runs on the normal exit path (destructor) and from
  /// the signal watcher before a forced exit — an interrupt no longer loses
  /// the run ledger entry.
  void flush(int exit_code) {
    if (flushed_.exchange(true)) return;
    obs::ledger().set_exit_code(exit_code);
    if (heartbeat_) obs::stop_heartbeat();
    if (obs::trace_enabled()) obs::stop_tracing();
    if (!trace_out_.empty()) {
      obs::write_trace(trace_out_);
      std::cerr << "wrote trace to " << trace_out_
                << " (load in Perfetto or chrome://tracing)\n";
    }
    if (!metrics_out_.empty()) {
      obs::metrics().write_json(metrics_out_);
      std::cerr << "wrote metrics to " << metrics_out_ << '\n';
    }
    obs::ledger().write();
  }

  ~ObsFlags() { flush(exit_code_); }

 private:
  std::string metrics_out_;
  std::string trace_out_;
  bool heartbeat_ = false;
  std::atomic<bool> flushed_{false};
  int exit_code_ = 2;
};

/// The running `serve` daemon, if any — the signal watcher routes the first
/// SIGINT/SIGTERM to its graceful drain instead of exiting.
std::atomic<simprof::service::ServiceServer*> g_serve_instance{nullptr};
sigset_t g_watched_signals;

/// Block SIGINT/SIGTERM for the whole process. Must run before any thread
/// is spawned so every thread inherits the mask and delivery is funnelled
/// to the watcher's sigwait.
void block_termination_signals() {
  sigemptyset(&g_watched_signals);
  sigaddset(&g_watched_signals, SIGINT);
  sigaddset(&g_watched_signals, SIGTERM);
  pthread_sigmask(SIG_BLOCK, &g_watched_signals, nullptr);
}

/// Watcher thread: sigwait for SIGINT/SIGTERM on a normal thread so the
/// response can do real work (I/O, locks) instead of being confined to
/// async-signal-safe calls. First signal: graceful — a running daemon
/// drains and the command returns 0 through the normal path; a one-shot
/// verb flushes manifests/metrics/trace and exits 128+sig (the distinct
/// interrupted exit code). Second signal: force-exit immediately.
void start_signal_watcher(ObsFlags* obs_flags) {
  std::thread([obs_flags] {
    int signals_seen = 0;
    for (;;) {
      int sig = 0;
      if (sigwait(&g_watched_signals, &sig) != 0) continue;
      ++signals_seen;
      if (auto* server = g_serve_instance.load(std::memory_order_acquire);
          server != nullptr && signals_seen == 1) {
        std::cerr << "\nsimprof: caught " << strsignal(sig)
                  << ", draining in-flight requests (signal again to force "
                     "exit)\n";
        server->request_stop();
        continue;
      }
      std::cerr << "\nsimprof: caught " << strsignal(sig)
                << ", flushing observability outputs\n";
      obs_flags->flush(128 + sig);
      std::_Exit(128 + sig);
    }
  }).detach();
}

std::vector<std::string> split_csv(const std::string& s) {
  std::vector<std::string> out;
  std::size_t pos = 0;
  while (pos <= s.size()) {
    const std::size_t comma = s.find(',', pos);
    const std::string tok =
        s.substr(pos, comma == std::string::npos ? comma : comma - pos);
    if (!tok.empty()) out.push_back(tok);
    if (comma == std::string::npos) break;
    pos = comma + 1;
  }
  return out;
}

int cmd_serve(const Args& args) {
  service::ServiceConfig cfg;
  cfg.socket_path = args.opt("socket", "");
  if (cfg.socket_path.empty()) {
    std::cerr << "error: `simprof serve` needs --socket PATH\n";
    return 2;
  }
  if (!apply_checkpoint_flags(args, cfg.lab)) return 2;
  try {
    cfg.max_queue = std::stoull(args.opt("max-queue", "64"));
    cfg.client_max_inflight = std::stoull(args.opt("client-inflight", "8"));
    cfg.admission.initial_concurrency = std::stoull(args.opt("tickets", "2"));
    cfg.admission.min_concurrency = std::stoull(args.opt("tickets-min", "1"));
    cfg.admission.max_concurrency = std::stoull(args.opt("tickets-max", "16"));
    cfg.admission.probe_interval_ms = static_cast<std::uint32_t>(
        std::stoul(args.opt("probe-interval-ms", "200")));
    cfg.stream_retain_cap = std::stoull(args.opt("stream-retain-cap", "0"));
    cfg.request_threads = std::stoull(args.opt("request-threads", "1"));
  } catch (const std::exception&) {
    std::cerr << "error: serve flags expect non-negative integers\n";
    return 2;
  }
  cfg.fixed_concurrency = args.has("fixed");

  obs::ledger().set_config("socket", cfg.socket_path);
  obs::ledger().set_config("tickets_max",
                           std::to_string(cfg.admission.max_concurrency));
  obs::ledger().set_config("admission",
                           cfg.fixed_concurrency ? "fixed" : "probing");

  service::ServiceServer server(cfg);
  server.start();
  g_serve_instance.store(&server, std::memory_order_release);
  std::cout << "serving on " << cfg.socket_path
            << " (tickets " << cfg.admission.min_concurrency << ".."
            << cfg.admission.max_concurrency << ", "
            << (cfg.fixed_concurrency ? "fixed" : "probing")
            << "; SIGINT/SIGTERM drains and exits)\n"
            << std::flush;
  server.wait();  // blocks until the signal watcher requests the drain
  g_serve_instance.store(nullptr, std::memory_order_release);

  const service::ServerStats stats = server.stats();
  obs::ledger().set_quality("service_requests",
                            static_cast<double>(stats.completed));
  obs::ledger().set_quality(
      "service_qps", stats.uptime_sec > 0.0
                         ? static_cast<double>(stats.completed) /
                               stats.uptime_sec
                         : 0.0);
  auto& request_ms = obs::metrics().quantile_histogram("svc.request_ms");
  obs::ledger().set_quality("service_p50_ms", request_ms.quantile(0.50));
  obs::ledger().set_quality("service_p99_ms", request_ms.quantile(0.99));
  obs::ledger().set_quality("service_admission_level",
                            static_cast<double>(stats.admission_level));
  std::cout << "served " << stats.completed << " requests ("
            << stats.rejected << " rejected, " << stats.errors
            << " errors) in " << Table::num(stats.uptime_sec, 1)
            << "s; final admission level " << stats.admission_level << '\n';
  return 0;
}

int cmd_loadgen(const Args& args) {
  service::LoadgenConfig cfg;
  cfg.socket_path = args.opt("socket", "");
  if (cfg.socket_path.empty()) {
    std::cerr << "error: `simprof loadgen` needs --socket PATH\n";
    return 2;
  }
  try {
    cfg.clients = std::stoull(args.opt("clients", "4"));
    cfg.requests_per_client = std::stoull(args.opt("requests", "8"));
    cfg.inflight_per_client = std::stoull(args.opt("inflight", "1"));
    cfg.scale = std::stod(args.opt("scale", "0.05"));
    cfg.seed = std::stoull(args.opt("seed", "42"));
    cfg.sample_n = std::stoull(args.opt("sample", "8"));
    cfg.stream_retain = std::stoull(args.opt("stream-retain", "0"));
  } catch (const std::exception&) {
    std::cerr << "error: loadgen flags expect numbers\n";
    return 2;
  }
  cfg.workloads = split_csv(args.opt("workloads", "grep_sp"));
  if (cfg.workloads.empty()) {
    std::cerr << "error: --workloads needs at least one name\n";
    return 2;
  }
  cfg.input = args.opt("input", "Google");
  cfg.analyze = !args.has("no-analyze");
  cfg.stream = args.has("stream");
  cfg.vary_seed = args.has("vary-seed");
  features::FeatureMode mode = features::FeatureMode::kFreq;
  EstimatorKind est = EstimatorKind::kNeyman;
  if (!parse_features_arg(args, mode) || !parse_estimator_arg(args, est)) {
    return 2;
  }
  cfg.features = static_cast<std::uint8_t>(mode);
  cfg.estimator = est == EstimatorKind::kTwoPhase ? 1 : 0;

  const service::LoadgenReport report = service::run_loadgen(cfg);

  obs::ledger().set_config("socket", cfg.socket_path);
  obs::ledger().set_config("clients", std::to_string(cfg.clients));
  obs::ledger().set_config("inflight", std::to_string(cfg.inflight_per_client));
  obs::ledger().set_quality("loadgen_completed",
                            static_cast<double>(report.completed));
  obs::ledger().set_quality("loadgen_rejected",
                            static_cast<double>(report.rejected));
  obs::ledger().set_quality("loadgen_qps", report.qps);
  obs::ledger().set_quality("loadgen_p50_ms", report.p50_ms);
  obs::ledger().set_quality("loadgen_p99_ms", report.p99_ms);

  std::cout << "offered " << cfg.clients << " clients x "
            << cfg.requests_per_client << " requests (inflight "
            << cfg.inflight_per_client << ")\n"
            << "completed " << report.completed << ", rejected "
            << report.rejected << ", errors " << report.errors
            << ", stream updates " << report.stream_updates << '\n'
            << "qps " << Table::num(report.qps, 2) << ", p50 "
            << Table::num(report.p50_ms, 1) << "ms, p90 "
            << Table::num(report.p90_ms, 1) << "ms, p99 "
            << Table::num(report.p99_ms, 1) << "ms\n";

  if (const std::string f = args.opt("json", ""); !f.empty()) {
    std::ofstream out(f, std::ios::trunc);
    out << "{\n  \"completed\": " << report.completed
        << ",\n  \"rejected\": " << report.rejected
        << ",\n  \"errors\": " << report.errors
        << ",\n  \"stream_updates\": " << report.stream_updates
        << ",\n  \"elapsed_sec\": " << report.elapsed_sec
        << ",\n  \"qps\": " << report.qps
        << ",\n  \"p50_ms\": " << report.p50_ms
        << ",\n  \"p90_ms\": " << report.p90_ms
        << ",\n  \"p99_ms\": " << report.p99_ms << "\n}\n";
  }
  return report.errors > 0 ? 1 : 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) {
    print_usage(std::cerr);
    return 2;
  }
  const std::string cmd_name = argv[1];
  if (cmd_name == "--help" || cmd_name == "-h" || cmd_name == "help") {
    print_usage(std::cout);
    return 0;
  }
  if (cmd_name == "--version" || cmd_name == "-V" || cmd_name == "version") {
    print_version();
    return 0;
  }
  const CommandSpec* cmd = find_command(cmd_name);
  if (cmd == nullptr) {
    std::cerr << "error: unknown subcommand '" << cmd_name
              << "'\nsubcommands:";
    for (const auto& c : kCommands) std::cerr << ' ' << c.name;
    std::cerr << "\nrun `simprof --help` for details.\n";
    return 2;
  }
  Args args;
  if (!parse(*cmd, argc, argv, args)) return 2;
  if (args.help) {
    print_command_usage(std::cout, *cmd);
    return 0;
  }
  if (!cmd->positional.empty() && args.positional.empty()) {
    std::cerr << "error: `simprof " << cmd->name << "` needs "
              << cmd->positional << '\n';
    print_command_usage(std::cerr, *cmd);
    return 2;
  }

  ObsFlags obs_flags;
  if (!obs_flags.apply(args, cmd->name, argc, argv)) return 2;
  // Signals are blocked before any thread exists (so workers inherit the
  // mask) and handled by a dedicated watcher: graceful daemon drain on the
  // first SIGINT/SIGTERM, flush-then-exit(128+sig) otherwise.
  block_termination_signals();
  start_signal_watcher(&obs_flags);
  int rc = 2;
  try {
    // Global: --threads N caps the phase-formation thread pool for every
    // subcommand. Output is bit-identical regardless of the value.
    if (const std::string t = args.opt("threads", ""); !t.empty()) {
      try {
        support::set_default_thread_count(std::stoull(t));
      } catch (const std::exception&) {
        obs_flags.set_exit_code(2);
        std::cerr << "error: --threads expects a non-negative integer, got '"
                  << t << "'\n";
        return 2;
      }
    }
    if (cmd->name == "list") rc = cmd_list();
    else if (cmd->name == "profile") rc = cmd_profile(args);
    else if (cmd->name == "phases") rc = cmd_phases(args);
    else if (cmd->name == "sample") rc = cmd_sample(args);
    else if (cmd->name == "size") rc = cmd_size(args);
    else if (cmd->name == "sensitivity") rc = cmd_sensitivity(args);
    else if (cmd->name == "measure") rc = cmd_measure(args);
    else if (cmd->name == "verify") rc = cmd_verify(args);
    else if (cmd->name == "report") rc = cmd_report(args);
    else if (cmd->name == "serve") rc = cmd_serve(args);
    else if (cmd->name == "loadgen") rc = cmd_loadgen(args);
  } catch (const std::exception& e) {
    std::cerr << "error: " << e.what() << '\n';
    rc = 1;
  }
  // The manifest is written by obs_flags' destructor after this return, so
  // record the exit code first.
  obs_flags.set_exit_code(rc);
  return rc;
}
